// End-to-end tests of the Application driver against a real simulator,
// network, DFS, cluster, and the Custody manager: job lifecycle, demand
// reporting, executor release/swap behaviour, and metrics emission.
#include <gtest/gtest.h>

#include <memory>

#include "app/application.h"
#include "cluster/custody_manager.h"
#include "cluster/standalone_manager.h"
#include "common/units.h"
#include "workload/workloads.h"

namespace custody::app {
namespace {

using custody::units::GB;
using custody::units::MB;

struct Harness {
  explicit Harness(std::size_t nodes = 8, int execs_per_node = 1)
      : dfs(MakeDfsConfig(nodes), Rng(7)),
        net(sim, MakeNetConfig(nodes)),
        cluster(nodes, MakeWorkerConfig(execs_per_node)),
        manager(sim, cluster, Locations(), cluster::CustodyConfig{2, {}}) {}

  static dfs::DfsConfig MakeDfsConfig(std::size_t nodes) {
    dfs::DfsConfig c;
    c.num_nodes = nodes;
    c.default_replication = 2;
    return c;
  }
  static net::NetworkConfig MakeNetConfig(std::size_t nodes) {
    net::NetworkConfig c;
    c.num_nodes = nodes;
    return c;
  }
  static cluster::WorkerConfig MakeWorkerConfig(int per_node) {
    cluster::WorkerConfig c;
    c.executors_per_node = per_node;
    return c;
  }
  core::BlockLocationsFn Locations() {
    return [this](BlockId b) -> const std::vector<NodeId>& {
      return dfs.locations(b);
    };
  }

  Application& make_app(AppId id, AppConfig config = {}) {
    apps.push_back(std::make_unique<Application>(
        id, sim, net, dfs, cluster, metrics, ids, Rng(100 + id.value()),
        config));
    apps.back()->attach_manager(manager);
    return *apps.back();
  }

  JobSpec simple_job(const std::string& path, double bytes,
                     double compute_per_byte = 1e-9) {
    const FileId f = dfs.write_file(path, bytes);
    JobSpec spec;
    spec.name = path;
    spec.input_file = f;
    spec.input_compute_secs_per_byte = compute_per_byte;
    return spec;
  }

  sim::Simulator sim;
  dfs::Dfs dfs;
  net::Network net;
  cluster::Cluster cluster;
  cluster::CustodyManager manager;
  metrics::MetricsCollector metrics;
  IdSource ids;
  std::vector<std::unique_ptr<Application>> apps;
};

TEST(Application, RunsASingleJobToCompletion) {
  Harness h;
  Application& app = h.make_app(AppId(0));
  const JobId job = app.submit_job(h.simple_job("/a", MB(256.0)));
  h.sim.run();
  EXPECT_EQ(app.jobs_completed(), 1);
  const Job* j = app.find_job(job);
  ASSERT_NE(j, nullptr);
  EXPECT_TRUE(j->finished);
  EXPECT_GT(j->finish_time, j->submit_time);
  EXPECT_EQ(j->input_tasks, 2);
}

TEST(Application, CustodyGivesPerfectLocalityWhenUncontended) {
  Harness h;
  Application& app = h.make_app(AppId(0));
  app.submit_job(h.simple_job("/a", MB(512.0)));
  h.sim.run();
  ASSERT_EQ(h.metrics.jobs().size(), 1u);
  EXPECT_TRUE(h.metrics.jobs().front().perfectly_local());
  EXPECT_EQ(app.launch_breakdown().local, 4);
  EXPECT_EQ(app.launch_breakdown().uncovered, 0);
}

TEST(Application, SubmitRequiresManager) {
  Harness h;
  Application orphan(AppId(9), h.sim, h.net, h.dfs, h.cluster, h.metrics,
                     h.ids, Rng(1), AppConfig{});
  JobSpec spec = h.simple_job("/x", MB(128.0));
  EXPECT_THROW(orphan.submit_job(spec), std::logic_error);
}

TEST(Application, TasksNeverWaitForAllocation) {
  // Custody allocates at the job-submission instant: the scheduler delay of
  // the first wave of tasks is zero.
  Harness h;
  Application& app = h.make_app(AppId(0));
  app.submit_job(h.simple_job("/a", MB(256.0)));
  h.sim.run();
  for (const auto& task : h.metrics.tasks()) {
    if (task.is_input) {
      EXPECT_DOUBLE_EQ(task.scheduler_delay(), 0.0);
    }
  }
}

TEST(Application, ReleasesExecutorsWhenIdle) {
  Harness h;
  AppConfig config;
  config.dynamic_executors = true;
  Application& app = h.make_app(AppId(0), config);
  app.submit_job(h.simple_job("/a", MB(256.0)));
  h.sim.run();
  EXPECT_EQ(app.executors_held(), 0);
  EXPECT_EQ(h.cluster.idle_count(), h.cluster.num_executors());
}

TEST(Application, StaticModeKeepsExecutors) {
  Harness h;
  AppConfig config;
  config.dynamic_executors = false;
  Application& app = h.make_app(AppId(0), config);
  app.submit_job(h.simple_job("/a", MB(256.0)));
  h.sim.run();
  EXPECT_GT(app.executors_held(), 0);
}

TEST(Application, PendingDemandListsUncoveredReadyTasks) {
  Harness h;
  AppConfig config;
  config.dynamic_executors = false;  // keep grants static for inspection
  Application& app = h.make_app(AppId(0), config);

  // No executors yet: every ready input task is unsatisfied.
  JobSpec spec = h.simple_job("/a", MB(384.0));
  // Build the job but freeze time so tasks stay ready (compute is long).
  spec.input_compute_secs_per_byte = 1.0;  // absurdly long tasks
  app.submit_job(spec);
  const auto demand = app.pending_demand();
  // The allocation round at submit time may have covered all tasks; demand
  // reflects what is still uncovered.
  for (const auto& job : demand) {
    EXPECT_EQ(job.total_tasks, 3);
    for (const auto& task : job.unsatisfied) {
      const auto& locs = h.dfs.locations(task.block);
      for (const auto& exec : h.cluster.executors()) {
        if (exec.owner != AppId(0)) continue;
        const bool on_replica =
            std::find(locs.begin(), locs.end(), exec.node) != locs.end();
        EXPECT_FALSE(on_replica);
      }
    }
  }
}

TEST(Application, WantedExecutorsCountsReadyAndRunning) {
  Harness h;
  Application& app = h.make_app(AppId(0));
  EXPECT_EQ(app.wanted_executors(), 0);
  JobSpec spec = h.simple_job("/a", MB(512.0));
  spec.input_compute_secs_per_byte = 1e-3;  // long enough to observe running
  app.submit_job(spec);
  EXPECT_GT(app.wanted_executors(), 0);
  h.sim.run();
  EXPECT_EQ(app.wanted_executors(), 0);
}

TEST(Application, LocalityStatsAccumulate) {
  Harness h;
  Application& app = h.make_app(AppId(0));
  app.submit_job(h.simple_job("/a", MB(256.0)));
  h.sim.run();
  const auto stats = app.locality();
  EXPECT_EQ(stats.total_jobs, 1);
  EXPECT_EQ(stats.total_tasks, 2);
  EXPECT_EQ(stats.local_jobs, 1);
  EXPECT_EQ(stats.local_tasks, 2);
}

TEST(Application, MultiStageJobRunsAllStages) {
  Harness h;
  Application& app = h.make_app(AppId(0));
  JobSpec spec = h.simple_job("/a", MB(512.0));
  ShuffleStageSpec reduce;
  reduce.num_tasks = 2;
  reduce.shuffle_bytes = MB(64.0);
  reduce.compute_secs_per_task = 0.1;
  spec.downstream.push_back(reduce);
  const JobId job = app.submit_job(spec);
  h.sim.run();
  const Job* j = app.find_job(job);
  ASSERT_NE(j, nullptr);
  EXPECT_TRUE(j->finished);
  ASSERT_EQ(j->stages.size(), 2u);
  EXPECT_TRUE(j->stages[1].complete());
  // Downstream records exist in the metrics with stage index 1.
  int downstream_records = 0;
  for (const auto& task : h.metrics.tasks()) {
    if (!task.is_input) {
      ++downstream_records;
      EXPECT_EQ(task.stage, 1);
      EXPECT_GE(task.finish_time, task.launch_time);
    }
  }
  EXPECT_EQ(downstream_records, 2);
}

TEST(Application, JobRecordCapturesInputStage) {
  Harness h;
  Application& app = h.make_app(AppId(0));
  JobSpec spec = h.simple_job("/a", MB(256.0));
  ShuffleStageSpec reduce;
  reduce.num_tasks = 1;
  reduce.shuffle_bytes = MB(16.0);
  reduce.compute_secs_per_task = 0.5;
  spec.downstream.push_back(reduce);
  app.submit_job(spec);
  h.sim.run();
  ASSERT_EQ(h.metrics.jobs().size(), 1u);
  const auto& record = h.metrics.jobs().front();
  EXPECT_GT(record.input_stage_finish, record.submit_time);
  EXPECT_GT(record.finish_time, record.input_stage_finish);
  EXPECT_EQ(record.input_tasks, 2);
}

TEST(Application, TwoAppsShareTheClusterFairly) {
  Harness h(8, 1);
  Application& a = h.make_app(AppId(0));
  Application& b = h.make_app(AppId(1));
  // Both submit at t=0; each is entitled to share = 4 executors.
  JobSpec sa = h.simple_job("/a", MB(896.0));  // 7 blocks
  JobSpec sb = h.simple_job("/b", MB(896.0));
  sa.input_compute_secs_per_byte = 1e-6;  // keep tasks running a while
  sb.input_compute_secs_per_byte = 1e-6;
  a.submit_job(sa);
  b.submit_job(sb);
  h.sim.run_until(0.1);
  EXPECT_LE(a.executors_held(), 4);
  EXPECT_LE(b.executors_held(), 4);
  EXPECT_GT(a.executors_held(), 0);
  EXPECT_GT(b.executors_held(), 0);
  h.sim.run();
  EXPECT_EQ(a.jobs_completed() + b.jobs_completed(), 2);
}

TEST(Application, SequentialJobsReuseTheCluster) {
  Harness h;
  Application& app = h.make_app(AppId(0));
  app.submit_job(h.simple_job("/a", MB(256.0)));
  h.sim.run();
  app.submit_job(h.simple_job("/b", MB(256.0)));
  h.sim.run();
  EXPECT_EQ(app.jobs_completed(), 2);
  EXPECT_EQ(h.metrics.jobs().size(), 2u);
}

TEST(Application, DelayWaitExpiryLaunchesRemoteWithoutSpinning) {
  // Regression for the retry-loop edge: the retry event fires at exactly
  // wait_start + locality_wait, where fp rounding can make
  // (wait_start + wait) - wait_start compare below wait.  Without the
  // epsilon in the expiry test, pick() re-arms a zero-delay retry at the
  // same instant forever and sim.run() never returns.  The job is
  // submitted at an awkward time so the sum actually rounds.
  for (const bool indexed : {true, false}) {
    SCOPED_TRACE(indexed ? "indexed" : "reference");
    Harness h(4, 1);
    // Job A monopolises node 0 for ~26 s; job B has one block on the busy
    // node 0 and one on node 1, so its node-0 task must wait out the
    // locality timer on an idle foreign executor and then go remote.
    auto& nn = const_cast<dfs::NameNode&>(h.dfs.namenode());
    auto pin = [&nn](BlockId b, NodeId target) {
      if (!nn.is_local(b, target)) nn.add_replica(b, target);
      for (NodeId existing : std::vector<NodeId>(nn.locations(b))) {
        if (existing != target) nn.remove_replica(b, existing);
      }
    };
    const FileId file_a = h.dfs.write_file("/a", MB(128.0), 1);
    pin(h.dfs.blocks_of(file_a).front(), NodeId(0));
    const FileId file_b = h.dfs.write_file("/b", MB(256.0), 1);
    pin(h.dfs.blocks_of(file_b)[0], NodeId(0));
    pin(h.dfs.blocks_of(file_b)[1], NodeId(1));

    AppConfig config;
    config.dynamic_executors = false;
    config.locality_swap = false;
    config.scheduler.kind = SchedulerKind::kDelay;
    config.scheduler.locality_wait = 3.0;
    config.scheduler.indexed = indexed;
    Application& app = h.make_app(AppId(0), config);

    JobSpec spec_a;
    spec_a.name = "/a";
    spec_a.input_file = file_a;
    spec_a.input_compute_secs_per_byte = 2e-7;  // ~26.8 s on node 0
    app.submit_job(spec_a);
    JobSpec spec_b;
    spec_b.name = "/b";
    spec_b.input_file = file_b;
    spec_b.input_compute_secs_per_byte = 1e-9;  // fast
    h.sim.post_at(0.734561892337, [&app, spec_b] { app.submit_job(spec_b); });

    h.sim.run();  // hangs on a zero-delay retry loop if the edge regresses
    EXPECT_EQ(app.jobs_completed(), 2);
    const auto& breakdown = app.launch_breakdown();
    // B's node-0 task launched remotely after its wait expired.
    EXPECT_GE(breakdown.covered_busy + breakdown.uncovered, 1);
  }
}

TEST(Application, BreakdownClassifiesNonLocalLaunches) {
  // Force a scenario with no data-local executor: a one-node "island"
  // cluster where all replicas live on node 0 but budget pins the app to a
  // foreign node is hard to build; instead verify the counters are
  // consistent: local + covered + uncovered == launched input tasks.
  Harness h;
  Application& app = h.make_app(AppId(0));
  app.submit_job(h.simple_job("/a", GB(1.0)));
  h.sim.run();
  const auto& b = app.launch_breakdown();
  EXPECT_EQ(b.local + b.covered_busy + b.uncovered, 8);
}

}  // namespace
}  // namespace custody::app
