// Tests for the executor-side block cache: LRU semantics, merged location
// maps, and the end-to-end locality boost it provides.
#include <gtest/gtest.h>

#include "common/units.h"
#include "dfs/cache.h"
#include "workload/experiment.h"

namespace custody::dfs {
namespace {

using custody::units::MB;

struct CacheFixture {
  CacheFixture()
      : dfs(MakeConfig(), Rng(1), std::make_unique<RoundRobinPlacement>()) {}

  static DfsConfig MakeConfig() {
    DfsConfig c;
    c.num_nodes = 8;
    c.block_bytes = MB(128.0);
    c.default_replication = 1;
    return c;
  }

  BlockId block(int i) {
    while (static_cast<int>(blocks.size()) <= i) {
      const FileId f = dfs.write_file("/f" + std::to_string(blocks.size()),
                                      MB(128.0));
      blocks.push_back(dfs.blocks_of(f).front());
    }
    return blocks[static_cast<std::size_t>(i)];
  }

  Dfs dfs;
  std::vector<BlockId> blocks;
};

TEST(BlockCache, DisabledWhenZeroCapacity) {
  CacheFixture f;
  BlockCache cache(f.dfs, 0.0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(NodeId(1), f.block(0));
  EXPECT_FALSE(cache.is_cached(NodeId(1), f.block(0)));
}

TEST(BlockCache, InsertAndQuery) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(512.0));
  // Block 0 lives on node 0 (round-robin); cache it on node 5.
  cache.insert(NodeId(5), f.block(0));
  EXPECT_TRUE(cache.is_cached(NodeId(5), f.block(0)));
  EXPECT_FALSE(cache.is_cached(NodeId(4), f.block(0)));
  EXPECT_TRUE(cache.is_local(f.block(0), NodeId(5)));
  EXPECT_TRUE(cache.is_local(f.block(0), NodeId(0)));  // disk replica
  EXPECT_DOUBLE_EQ(cache.bytes_on(NodeId(5)), MB(128.0));
}

TEST(BlockCache, SkipsBlocksAlreadyOnDisk) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(512.0));
  cache.insert(NodeId(0), f.block(0));  // node 0 already stores block 0
  EXPECT_FALSE(cache.is_cached(NodeId(0), f.block(0)));
  EXPECT_DOUBLE_EQ(cache.bytes_on(NodeId(0)), 0.0);
}

TEST(BlockCache, LruEviction) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(256.0));  // room for two 128 MB blocks
  cache.insert(NodeId(5), f.block(0));
  cache.insert(NodeId(5), f.block(1));
  // Touch block 0 so block 1 becomes LRU.
  EXPECT_TRUE(cache.is_cached(NodeId(5), f.block(0)));
  cache.insert(NodeId(5), f.block(2));
  EXPECT_TRUE(cache.is_cached(NodeId(5), f.block(0)));
  EXPECT_FALSE(cache.is_cached(NodeId(5), f.block(1)));  // evicted
  EXPECT_TRUE(cache.is_cached(NodeId(5), f.block(2)));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BlockCache, OversizedBlockNeverCached) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(64.0));  // smaller than one block
  cache.insert(NodeId(5), f.block(0));
  EXPECT_FALSE(cache.is_cached(NodeId(5), f.block(0)));
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(BlockCache, MergedLocationsCombineDiskAndCache) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(512.0));
  const BlockId b = f.block(0);  // disk replica on node 0
  EXPECT_EQ(cache.merged_locations(b), f.dfs.locations(b));
  cache.insert(NodeId(5), b);
  cache.insert(NodeId(3), b);
  const auto& merged = cache.merged_locations(b);
  EXPECT_EQ(merged, (std::vector<NodeId>{NodeId(0), NodeId(3), NodeId(5)}));
}

TEST(BlockCache, MergedLocationsShrinkOnEviction) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(128.0));  // room for exactly one block
  const BlockId b0 = f.block(0);
  cache.insert(NodeId(5), b0);
  EXPECT_EQ(cache.merged_locations(b0).size(), 2u);
  cache.insert(NodeId(5), f.block(1));  // evicts b0 from node 5
  EXPECT_EQ(cache.merged_locations(b0), f.dfs.locations(b0));
}

TEST(BlockCache, StatsCountHitsAndLookups) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(512.0));
  cache.insert(NodeId(5), f.block(0));
  (void)cache.is_cached(NodeId(5), f.block(0));  // hit
  (void)cache.is_cached(NodeId(4), f.block(0));  // miss
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().lookups, 2u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(BlockCache, IndependentPerNodeBudgets) {
  CacheFixture f;
  BlockCache cache(f.dfs, MB(128.0));
  cache.insert(NodeId(4), f.block(0));
  cache.insert(NodeId(5), f.block(1));
  EXPECT_TRUE(cache.is_cached(NodeId(4), f.block(0)));
  EXPECT_TRUE(cache.is_cached(NodeId(5), f.block(1)));
}

// ---------- end-to-end -------------------------------------------------------

TEST(CacheIntegration, CacheLiftsBaselineLocality) {
  using namespace custody::workload;
  ExperimentConfig config;
  config.num_nodes = 16;
  config.manager = ManagerKind::kStandalone;
  config.kinds = {WorkloadKind::kWordCount};
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 6;
  config.trace.files_per_kind = 3;  // hot files: re-reads hit the cache
  config.trace.zipf_skew = 1.2;
  config.seed = 17;

  const auto without = RunExperiment(config);
  config.cache_mb_per_node = 4096.0;
  const auto with_cache = RunExperiment(config);
  EXPECT_GT(with_cache.cache_insertions, 0u);
  EXPECT_GE(with_cache.overall_task_locality_percent,
            without.overall_task_locality_percent);
  EXPECT_LE(with_cache.jct.mean, without.jct.mean * 1.05);
}

TEST(CacheIntegration, CustodySeesCachedCopiesAsLocality) {
  using namespace custody::workload;
  ExperimentConfig config;
  config.num_nodes = 16;
  config.manager = ManagerKind::kCustody;
  config.kinds = {WorkloadKind::kWordCount};
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 6;
  config.trace.files_per_kind = 3;
  config.trace.zipf_skew = 1.2;
  config.cache_mb_per_node = 4096.0;
  config.seed = 17;
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 18);
  EXPECT_GT(result.overall_task_locality_percent, 90.0);
}

}  // namespace
}  // namespace custody::dfs
