// Tests for the physical cluster ledger: executors, ownership, idle pool.
#include <gtest/gtest.h>

#include <set>

#include "cluster/cluster.h"

namespace custody::cluster {
namespace {

TEST(Cluster, CreatesExecutorsPerNode) {
  Cluster cluster(3, WorkerConfig{.executors_per_node = 2});
  EXPECT_EQ(cluster.num_nodes(), 3u);
  EXPECT_EQ(cluster.num_executors(), 6u);
  EXPECT_EQ(cluster.node_of(ExecutorId(0)), NodeId(0));
  EXPECT_EQ(cluster.node_of(ExecutorId(1)), NodeId(0));
  EXPECT_EQ(cluster.node_of(ExecutorId(4)), NodeId(2));
}

TEST(Cluster, RejectsDegenerateConfigs) {
  EXPECT_THROW(Cluster(0, WorkerConfig{}), std::invalid_argument);
  EXPECT_THROW(Cluster(2, WorkerConfig{.executors_per_node = 0}),
               std::invalid_argument);
}

TEST(Cluster, AssignAndRelease) {
  Cluster cluster(2, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(7));
  EXPECT_TRUE(cluster.executor(ExecutorId(0)).allocated());
  EXPECT_EQ(cluster.executor(ExecutorId(0)).owner, AppId(7));
  EXPECT_EQ(cluster.owned_by(AppId(7)), 1);
  cluster.release(ExecutorId(0));
  EXPECT_FALSE(cluster.executor(ExecutorId(0)).allocated());
  EXPECT_EQ(cluster.owned_by(AppId(7)), 0);
}

TEST(Cluster, RejectsDoubleAssign) {
  Cluster cluster(2, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(1));
  EXPECT_THROW(cluster.assign(ExecutorId(0), AppId(2)), std::logic_error);
}

TEST(Cluster, RejectsReleasingUnallocated) {
  Cluster cluster(2, WorkerConfig{});
  EXPECT_THROW(cluster.release(ExecutorId(0)), std::logic_error);
}

TEST(Cluster, RejectsReleasingBusy) {
  Cluster cluster(2, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(1));
  cluster.executor(ExecutorId(0)).busy = true;
  EXPECT_THROW(cluster.release(ExecutorId(0)), std::logic_error);
}

TEST(Cluster, RejectsUnknownExecutor) {
  Cluster cluster(1, WorkerConfig{.executors_per_node = 1});
  EXPECT_THROW((void)cluster.executor(ExecutorId(5)), std::out_of_range);
}

TEST(Cluster, IdleExecutorsTrackAllocation) {
  Cluster cluster(2, WorkerConfig{.executors_per_node = 2});
  EXPECT_EQ(cluster.idle_count(), 4u);
  cluster.assign(ExecutorId(1), AppId(0));
  cluster.assign(ExecutorId(2), AppId(1));
  const auto idle = cluster.idle_executors();
  ASSERT_EQ(idle.size(), 2u);
  std::set<ExecutorId> ids;
  for (const auto& e : idle) ids.insert(e.id);
  EXPECT_TRUE(ids.count(ExecutorId(0)));
  EXPECT_TRUE(ids.count(ExecutorId(3)));
  // Idle info carries the right node.
  for (const auto& e : idle) EXPECT_EQ(e.node, cluster.node_of(e.id));
}

TEST(Cluster, BusyFlagIndependentOfOwnership) {
  Cluster cluster(1, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(0));
  cluster.executor(ExecutorId(0)).busy = true;
  // Busy executors are not idle, but they are also not in the pool (owned).
  EXPECT_EQ(cluster.idle_count(), 1u);  // only executor 1 remains idle
  cluster.executor(ExecutorId(0)).busy = false;
  cluster.release(ExecutorId(0));
  EXPECT_EQ(cluster.idle_count(), 2u);
}

TEST(Cluster, DiskRateFromConfig) {
  Cluster cluster(2, WorkerConfig{.disk_bps = 12345.0});
  EXPECT_DOUBLE_EQ(cluster.disk_bps(NodeId(0)), 12345.0);
}

}  // namespace
}  // namespace custody::cluster
