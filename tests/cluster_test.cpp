// Tests for the physical cluster ledger: executors, ownership, idle pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"

namespace custody::cluster {
namespace {

TEST(Cluster, CreatesExecutorsPerNode) {
  Cluster cluster(3, WorkerConfig{.executors_per_node = 2});
  EXPECT_EQ(cluster.num_nodes(), 3u);
  EXPECT_EQ(cluster.num_executors(), 6u);
  EXPECT_EQ(cluster.node_of(ExecutorId(0)), NodeId(0));
  EXPECT_EQ(cluster.node_of(ExecutorId(1)), NodeId(0));
  EXPECT_EQ(cluster.node_of(ExecutorId(4)), NodeId(2));
}

TEST(Cluster, RejectsDegenerateConfigs) {
  EXPECT_THROW(Cluster(0, WorkerConfig{}), std::invalid_argument);
  EXPECT_THROW(Cluster(2, WorkerConfig{.executors_per_node = 0}),
               std::invalid_argument);
}

TEST(Cluster, AssignAndRelease) {
  Cluster cluster(2, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(7));
  EXPECT_TRUE(cluster.executor(ExecutorId(0)).allocated());
  EXPECT_EQ(cluster.executor(ExecutorId(0)).owner, AppId(7));
  EXPECT_EQ(cluster.owned_by(AppId(7)), 1);
  cluster.release(ExecutorId(0));
  EXPECT_FALSE(cluster.executor(ExecutorId(0)).allocated());
  EXPECT_EQ(cluster.owned_by(AppId(7)), 0);
}

TEST(Cluster, RejectsDoubleAssign) {
  Cluster cluster(2, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(1));
  EXPECT_THROW(cluster.assign(ExecutorId(0), AppId(2)), std::logic_error);
}

TEST(Cluster, RejectsReleasingUnallocated) {
  Cluster cluster(2, WorkerConfig{});
  EXPECT_THROW(cluster.release(ExecutorId(0)), std::logic_error);
}

TEST(Cluster, RejectsReleasingBusy) {
  Cluster cluster(2, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(1));
  cluster.executor(ExecutorId(0)).busy = true;
  EXPECT_THROW(cluster.release(ExecutorId(0)), std::logic_error);
}

TEST(Cluster, RejectsUnknownExecutor) {
  Cluster cluster(1, WorkerConfig{.executors_per_node = 1});
  EXPECT_THROW((void)cluster.executor(ExecutorId(5)), std::out_of_range);
}

TEST(Cluster, IdleExecutorsTrackAllocation) {
  Cluster cluster(2, WorkerConfig{.executors_per_node = 2});
  EXPECT_EQ(cluster.idle_count(), 4u);
  cluster.assign(ExecutorId(1), AppId(0));
  cluster.assign(ExecutorId(2), AppId(1));
  const auto idle = cluster.idle_executors();
  ASSERT_EQ(idle.size(), 2u);
  std::set<ExecutorId> ids;
  for (const auto& e : idle) ids.insert(e.id);
  EXPECT_TRUE(ids.count(ExecutorId(0)));
  EXPECT_TRUE(ids.count(ExecutorId(3)));
  // Idle info carries the right node.
  for (const auto& e : idle) EXPECT_EQ(e.node, cluster.node_of(e.id));
}

TEST(Cluster, BusyFlagIndependentOfOwnership) {
  Cluster cluster(1, WorkerConfig{});
  cluster.assign(ExecutorId(0), AppId(0));
  cluster.executor(ExecutorId(0)).busy = true;
  // Busy executors are not idle, but they are also not in the pool (owned).
  EXPECT_EQ(cluster.idle_count(), 1u);  // only executor 1 remains idle
  cluster.executor(ExecutorId(0)).busy = false;
  cluster.release(ExecutorId(0));
  EXPECT_EQ(cluster.idle_count(), 2u);
}

TEST(Cluster, DiskRateFromConfig) {
  Cluster cluster(2, WorkerConfig{.disk_bps = 12345.0});
  EXPECT_DOUBLE_EQ(cluster.disk_bps(NodeId(0)), 12345.0);
}

// ---------- incremental ownership / idle bookkeeping ------------------------

// Property: the incrementally-maintained structures (idle index, per-app
// held-executor lists, per-app per-node counts) must agree with brute-force
// ledger scans after arbitrary assign/release/fail interleavings.
TEST(Cluster, IncrementalBookkeepingMatchesLedgerScans) {
  Rng rng(1337);
  for (int trial = 0; trial < 10; ++trial) {
    const int num_nodes = rng.uniform_int(1, 6);
    const int per_node = rng.uniform_int(1, 3);
    const int num_apps = rng.uniform_int(1, 4);
    Cluster cluster(static_cast<std::size_t>(num_nodes),
                    WorkerConfig{.executors_per_node = per_node});
    const std::size_t num_execs = cluster.num_executors();

    const auto check = [&] {
      // Idle set: count, content and order against the reference scan.
      const auto idle = cluster.idle_executors();
      ASSERT_EQ(cluster.idle_count(), idle.size());
      std::vector<core::ExecutorInfo> from_index;
      cluster.idle_index().append_infos(from_index);
      ASSERT_EQ(from_index.size(), idle.size());
      for (std::size_t i = 0; i < idle.size(); ++i) {
        ASSERT_EQ(from_index[i].id, idle[i].id);
        ASSERT_EQ(from_index[i].node, idle[i].node);
      }
      // Per-node heads.
      for (int n = 0; n < num_nodes; ++n) {
        const NodeId node(static_cast<NodeId::value_type>(n));
        ExecutorId expect = ExecutorId::invalid();
        for (const auto& info : idle) {
          if (info.node == node) {
            expect = info.id;
            break;
          }
        }
        ASSERT_EQ(cluster.first_idle_on(node), expect);
      }
      // Per-app views against owner scans.
      for (int a = 0; a < num_apps; ++a) {
        const AppId app(static_cast<AppId::value_type>(a));
        std::vector<ExecutorId> held_scan;
        std::vector<NodeId> node_scan;
        for (const Executor& exec : cluster.executors()) {
          if (exec.owner != app) continue;
          held_scan.push_back(exec.id);
          node_scan.push_back(exec.node);
        }
        std::sort(node_scan.begin(), node_scan.end());
        node_scan.erase(std::unique(node_scan.begin(), node_scan.end()),
                        node_scan.end());
        ASSERT_EQ(cluster.owned_by(app),
                  static_cast<int>(held_scan.size()));
        std::vector<ExecutorId> held;
        cluster.held_executors(app, held);
        ASSERT_EQ(held, held_scan);
        std::vector<NodeId> nodes;
        cluster.held_nodes(app, nodes);
        ASSERT_EQ(nodes, node_scan);
        for (int n = 0; n < num_nodes; ++n) {
          const NodeId node(static_cast<NodeId::value_type>(n));
          const bool expect = std::find(node_scan.begin(), node_scan.end(),
                                        node) != node_scan.end();
          ASSERT_EQ(cluster.holds_on(app, node), expect);
        }
        // Free-held set == ledger scan filtered on owner && !busy.
        std::vector<ExecutorId> free_scan;
        for (const Executor& exec : cluster.executors()) {
          if (exec.owner == app && !exec.busy) free_scan.push_back(exec.id);
        }
        std::vector<ExecutorId> free;
        cluster.free_held(app, free);
        ASSERT_EQ(free, free_scan);
        // Dense per-node held counts == per-node owner scans (null only
        // before the app's first grant, when every count is zero anyway).
        const std::vector<int>* counts = cluster.held_counts(app);
        for (int n = 0; n < num_nodes; ++n) {
          const NodeId node(static_cast<NodeId::value_type>(n));
          int expect = 0;
          for (const Executor& exec : cluster.executors()) {
            if (exec.owner == app && exec.node == node) ++expect;
          }
          ASSERT_EQ(counts == nullptr ? 0 : (*counts)[n], expect);
        }
      }
    };

    check();
    for (int step = 0; step < 60; ++step) {
      const double dice = rng.uniform(0.0, 1.0);
      if (dice < 0.45) {  // try to assign a random idle executor
        const ExecutorId e(static_cast<ExecutorId::value_type>(
            rng.index(num_execs)));
        const Executor& exec = cluster.executor(e);
        if (!exec.allocated() && cluster.node_alive(exec.node)) {
          cluster.assign(e, AppId(static_cast<AppId::value_type>(
                                rng.index(num_apps))));
        }
      } else if (dice < 0.75) {  // try to release a random free held executor
        const ExecutorId e(static_cast<ExecutorId::value_type>(
            rng.index(num_execs)));
        const Executor& exec = cluster.executor(e);
        if (exec.allocated() && !exec.busy) cluster.release(e);
      } else if (dice < 0.9) {  // flip a held executor's busy flag
        const ExecutorId e(static_cast<ExecutorId::value_type>(
            rng.index(num_execs)));
        const Executor& exec = cluster.executor(e);
        if (exec.allocated()) cluster.set_busy(e, !exec.busy);
      } else if (dice < 0.95) {  // rare: kill a node
        cluster.fail_node(NodeId(static_cast<NodeId::value_type>(
            rng.index(num_nodes))));
      }
      check();
    }
  }
}

}  // namespace
}  // namespace custody::cluster
