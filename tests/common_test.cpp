// Unit tests for the common module: ids, rng, stats, tables, csv.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/csv.h"
#include "common/json.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/simtime.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"
#include "common/units.h"

namespace custody {
namespace {

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  ExecutorId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(TaskId(1), TaskId(2));
  EXPECT_GT(TaskId(3), TaskId(2));
  EXPECT_LE(TaskId(2), TaskId(2));
  EXPECT_NE(TaskId(1), TaskId(2));
}

TEST(Ids, HashableInUnorderedSet) {
  std::unordered_set<BlockId> set;
  set.insert(BlockId(1));
  set.insert(BlockId(2));
  set.insert(BlockId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, StreamOutput) {
  std::ostringstream os;
  os << JobId(7) << " " << JobId();
  EXPECT_EQ(os.str(), "7 <invalid>");
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::MB(1.0), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(units::GB(1.0), 1024.0 * units::MB(1.0));
  EXPECT_DOUBLE_EQ(units::Gbps(8.0), 1e9);       // 8 gigabit = 1e9 bytes
  EXPECT_DOUBLE_EQ(units::ToMB(units::MB(128.0)), 128.0);
  EXPECT_DOUBLE_EQ(units::ToGB(units::GB(2.5)), 2.5);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.seed(), f1_again.seed());
  EXPECT_NE(f1.seed(), f2.seed());
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    const double d = rng.uniform(0.5, 1.5);
    EXPECT_GE(d, 0.5);
    EXPECT_LT(d, 1.5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::unordered_set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Zipf, UniformWhenSkewZero) {
  ZipfDistribution zipf(4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(zipf.pmf(i), 0.25, 1e-12);
}

TEST(Zipf, SkewFavorsLowIndices) {
  ZipfDistribution zipf(10, 1.0);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(5));
  double total = 0.0;
  for (std::size_t i = 0; i < 10; ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SamplingMatchesPmf) {
  ZipfDistribution zipf(5, 0.8);
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.pmf(i), 0.01);
  }
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
}

TEST(Summary, OrderStatistics) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(i);  // 1..100 reversed
  const Summary s = Summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_GT(s.p95, s.p75);
  EXPECT_GT(s.p99, s.p95);
}

TEST(Summary, SingleElement) {
  const Summary s = Summarize({7.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 1.0), 10.0);
}

TEST(Percentile, EmptySampleThrows) {
  EXPECT_THROW((void)Percentile({}, 0.5), std::invalid_argument);
}

TEST(Percentile, QuantileOutOfRangeThrows) {
  const std::vector<double> sorted{1.0, 2.0};
  EXPECT_THROW((void)Percentile(sorted, -0.01), std::invalid_argument);
  EXPECT_THROW((void)Percentile(sorted, 1.01), std::invalid_argument);
  EXPECT_THROW((void)Percentile(sorted, std::nan("")), std::invalid_argument);
}

TEST(Percentile, SingleSampleIsEveryQuantile) {
  const std::vector<double> sorted{3.5};
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 1.0), 3.5);
}

TEST(Percentile, TwoSampleEndpointsAndInterior) {
  const std::vector<double> sorted{2.0, 6.0};
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.25), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 0.75), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(sorted, 1.0), 6.0);
}

TEST(Gains, Percentages) {
  EXPECT_DOUBLE_EQ(GainPercent(50.0, 75.0), 50.0);
  EXPECT_DOUBLE_EQ(ReductionPercent(10.0, 8.0), 20.0);
  EXPECT_DOUBLE_EQ(GainPercent(0.0, 10.0), 0.0);  // guarded division
}

TEST(AsciiTable, AlignsAndPrints) {
  AsciiTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(AsciiTable, FormatHelpers) {
  EXPECT_EQ(AsciiTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::pct(36.9, 1), "36.9%");
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/custody_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row({"1", "hello, world"});
    csv.add_row({"2", "quote\"inside"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"hello, world\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  const std::string path = ::testing::TempDir() + "/custody_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"only-one"}), std::runtime_error);
  std::remove(path.c_str());
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(JsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonQuote("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(JsonQuote("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(JsonQuote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
  EXPECT_EQ(JsonQuote(std::string("\x1f")), "\"\\u001f\"");
  EXPECT_EQ(JsonQuote("say \"hi\" \\ bye"), "\"say \\\"hi\\\" \\\\ bye\"");

  const std::string path = ::testing::TempDir() + "/custody_json_ctrl.json";
  {
    JsonWriter json(path, {"text"});
    json.add_row({std::string("line1\nline2\x02")});
  }
  const std::string out = ReadWholeFile(path);
  EXPECT_NE(out.find("\"line1\\nline2\\u0002\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Json, NonFiniteNumberCellsStayQuoted) {
  // "nan" and "inf" parse via strtod and "1e999" overflows to +inf; none
  // of them are valid JSON numbers, so all must be emitted as strings.
  const std::string path = ::testing::TempDir() + "/custody_json_nan.json";
  {
    JsonWriter json(path, {"a", "b", "c", "d"});
    json.add_row({"nan", "inf", "1e999", "2.5"});
  }
  const std::string out = ReadWholeFile(path);
  EXPECT_NE(out.find("\"a\": \"nan\""), std::string::npos);
  EXPECT_NE(out.find("\"b\": \"inf\""), std::string::npos);
  EXPECT_NE(out.find("\"c\": \"1e999\""), std::string::npos);
  EXPECT_NE(out.find("\"d\": 2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Json, EmptyCellsAreEmptyStrings) {
  const std::string path = ::testing::TempDir() + "/custody_json_empty.json";
  {
    JsonWriter json(path, {"a", "b"});
    json.add_row({"", "x"});
  }
  const std::string out = ReadWholeFile(path);
  EXPECT_NE(out.find("\"a\": \"\""), std::string::npos);
  EXPECT_NE(out.find("\"b\": \"x\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Chunked pool (common/pool.h)
// ---------------------------------------------------------------------------

TEST(PoolResource, RecyclesFreedBlocksOfTheSameSizeClass) {
  PoolResource pool;
  void* a = pool.allocate(64, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.live_blocks(), 1u);
  pool.deallocate(a, 64, 8);
  EXPECT_EQ(pool.live_blocks(), 0u);
  // The freed block comes straight back: steady state allocates nothing new.
  void* b = pool.allocate(64, 8);
  EXPECT_EQ(b, a);
  pool.deallocate(b, 64, 8);
}

TEST(PoolResource, SteadyStateChurnDoesNotGrowReservation) {
  PoolResource pool;
  std::vector<void*> live;
  for (int i = 0; i < 1000; ++i) live.push_back(pool.allocate(96, 8));
  for (void* p : live) pool.deallocate(p, 96, 8);
  const std::size_t reserved = pool.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // A million further create/destroy cycles reuse the free lists.
  for (int i = 0; i < 1000000; ++i) {
    void* p = pool.allocate(96, 8);
    pool.deallocate(p, 96, 8);
  }
  EXPECT_EQ(pool.bytes_reserved(), reserved);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(PoolResource, OversizedAndOveralignedFallThroughToTheHeap) {
  PoolResource pool;
  void* big = pool.allocate(4096, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(pool.live_blocks(), 0u);  // not a pooled block
  EXPECT_EQ(pool.bytes_outside(), 4096u);
  pool.deallocate(big, 4096, 8);
  EXPECT_EQ(pool.bytes_outside(), 0u);

  void* aligned = pool.allocate(64, 64);
  ASSERT_NE(aligned, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % 64, 0u);
  pool.deallocate(aligned, 64, 64);
}

TEST(PoolAllocator, BacksAnUnorderedMapThroughRehashAndErase) {
  PoolResource pool;
  using Alloc = PoolAllocator<std::pair<const int, double>>;
  std::unordered_map<int, double, std::hash<int>, std::equal_to<int>, Alloc>
      map{Alloc(pool)};
  for (int i = 0; i < 500; ++i) map.emplace(i, i * 0.5);
  EXPECT_EQ(map.size(), 500u);
  EXPECT_GT(pool.live_blocks(), 0u);
  for (int i = 0; i < 500; ++i) map.erase(i);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(pool.live_blocks(), 0u);
  // Re-fill: the node storage comes back out of the free lists.
  const std::size_t reserved = pool.bytes_reserved();
  for (int i = 0; i < 500; ++i) map.emplace(i, 1.0);
  EXPECT_EQ(pool.bytes_reserved(), reserved);
}

TEST(ObjectPool, CreateDestroyRunsConstructorsAndRecyclesStorage) {
  struct Probe {
    explicit Probe(int* counter) : counter_(counter) { ++*counter_; }
    ~Probe() { --*counter_; }
    int* counter_;
    double payload[4] = {};
  };
  PoolResource pool;
  ObjectPool<Probe> objects(pool);
  int live = 0;
  Probe* a = objects.create(&live);
  EXPECT_EQ(live, 1);
  objects.destroy(a);
  EXPECT_EQ(live, 0);
  Probe* b = objects.create(&live);
  EXPECT_EQ(b, a);  // same size class, same recycled block
  objects.destroy(b);
  objects.destroy(nullptr);  // null-safe
  EXPECT_EQ(live, 0);
}

// ---------------------------------------------------------------------------
// Scale-aware time epsilon (common/simtime.h)
// ---------------------------------------------------------------------------

TEST(TimeEpsilon, FloorAppliesAtSmallTimestamps) {
  // Every classic horizon (seconds to hours) keeps the historical absolute
  // epsilon, so existing runs stay bit-identical.
  EXPECT_EQ(TimeEpsilonAt(0.0), kTimeEpsilonFloor);
  EXPECT_EQ(TimeEpsilonAt(1.0), kTimeEpsilonFloor);
  EXPECT_EQ(TimeEpsilonAt(3600.0), kTimeEpsilonFloor);
  EXPECT_EQ(TimeEpsilonAt(1e5), kTimeEpsilonFloor);
  EXPECT_EQ(TimeEpsilonAt(-42.0), kTimeEpsilonFloor);
}

TEST(TimeEpsilon, ScalesWithMagnitudeAtLargeTimestamps) {
  // At month-scale simulated times the ulp of a double exceeds 1e-9; the
  // epsilon must grow with it or comparisons lose all effect.
  const double month = 2.6e6;
  EXPECT_GT(TimeEpsilonAt(month * 10.0), kTimeEpsilonFloor);
  for (const double t : {1e7, 1e9, 1e12}) {
    const double eps = TimeEpsilonAt(t);
    const double ulp = std::nextafter(t, 2.0 * t) - t;
    EXPECT_GT(eps, ulp) << "epsilon at t=" << t << " is below one ulp";
    EXPECT_LT(eps, 1e-6 * t) << "epsilon at t=" << t << " is too loose";
    // t + eps must be representable as strictly greater than t, i.e. the
    // comparison `a >= b - eps` can still distinguish neighbours.
    EXPECT_GT(t + eps, t);
  }
}

TEST(TimeEpsilon, IsMonotoneInMagnitude) {
  double prev = 0.0;
  for (const double t : {0.0, 1.0, 1e3, 1e6, 1e9, 1e12, 1e15}) {
    const double eps = TimeEpsilonAt(t);
    EXPECT_GE(eps, prev);
    prev = eps;
  }
}

}  // namespace
}  // namespace custody
