// Tests for the simulated distributed filesystem: NameNode metadata,
// block carving, replica management, placement policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/units.h"
#include "dfs/dfs.h"

namespace custody::dfs {
namespace {

using custody::units::GB;
using custody::units::MB;

DfsConfig Config(std::size_t nodes = 10, int replication = 3) {
  DfsConfig c;
  c.num_nodes = nodes;
  c.block_bytes = MB(128.0);
  c.default_replication = replication;
  return c;
}

TEST(NameNode, CarvesFileIntoBlocks) {
  NameNode nn;
  const FileId f = nn.create_file("/a", MB(300.0), MB(128.0), 3);
  const auto& blocks = nn.blocks_of(f);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_DOUBLE_EQ(nn.block(blocks[0]).bytes, MB(128.0));
  EXPECT_DOUBLE_EQ(nn.block(blocks[1]).bytes, MB(128.0));
  EXPECT_DOUBLE_EQ(nn.block(blocks[2]).bytes, MB(44.0));  // tail block
  EXPECT_EQ(nn.block(blocks[2]).index, 2u);
  EXPECT_EQ(nn.block(blocks[0]).file, f);
}

TEST(NameNode, ExactMultipleHasNoTailBlock) {
  NameNode nn;
  const FileId f = nn.create_file("/a", MB(256.0), MB(128.0), 3);
  ASSERT_EQ(nn.blocks_of(f).size(), 2u);
  EXPECT_DOUBLE_EQ(nn.block(nn.blocks_of(f)[1]).bytes, MB(128.0));
}

TEST(NameNode, LookupByPath) {
  NameNode nn;
  const FileId f = nn.create_file("/x/y", MB(10.0), MB(128.0), 1);
  EXPECT_EQ(nn.lookup("/x/y"), f);
  EXPECT_FALSE(nn.lookup("/missing").has_value());
}

TEST(NameNode, RejectsDuplicatePath) {
  NameNode nn;
  nn.create_file("/a", MB(10.0), MB(128.0), 1);
  EXPECT_THROW(nn.create_file("/a", MB(10.0), MB(128.0), 1),
               std::invalid_argument);
}

TEST(NameNode, RejectsBadSizes) {
  NameNode nn;
  EXPECT_THROW(nn.create_file("/a", 0.0, MB(128.0), 1), std::invalid_argument);
  EXPECT_THROW(nn.create_file("/b", MB(1.0), 0.0, 1), std::invalid_argument);
  EXPECT_THROW(nn.create_file("/c", MB(1.0), MB(128.0), 0),
               std::invalid_argument);
}

TEST(NameNode, ReplicaAddRemoveAndLocality) {
  NameNode nn;
  const FileId f = nn.create_file("/a", MB(10.0), MB(128.0), 1);
  const BlockId b = nn.blocks_of(f).front();
  nn.add_replica(b, NodeId(3));
  nn.add_replica(b, NodeId(1));
  EXPECT_TRUE(nn.is_local(b, NodeId(1)));
  EXPECT_TRUE(nn.is_local(b, NodeId(3)));
  EXPECT_FALSE(nn.is_local(b, NodeId(2)));
  EXPECT_EQ(nn.locations(b), (std::vector<NodeId>{NodeId(1), NodeId(3)}));
  nn.remove_replica(b, NodeId(3));
  EXPECT_FALSE(nn.is_local(b, NodeId(3)));
}

TEST(NameNode, RefusesToRemoveLastReplica) {
  NameNode nn;
  const FileId f = nn.create_file("/a", MB(10.0), MB(128.0), 1);
  const BlockId b = nn.blocks_of(f).front();
  nn.add_replica(b, NodeId(0));
  EXPECT_THROW(nn.remove_replica(b, NodeId(0)), std::logic_error);
}

TEST(NameNode, RejectsDuplicateReplica) {
  NameNode nn;
  const FileId f = nn.create_file("/a", MB(10.0), MB(128.0), 1);
  const BlockId b = nn.blocks_of(f).front();
  nn.add_replica(b, NodeId(0));
  EXPECT_THROW(nn.add_replica(b, NodeId(0)), std::invalid_argument);
}

TEST(NameNode, DeleteFileRemovesMetadata) {
  NameNode nn;
  const FileId f = nn.create_file("/a", MB(300.0), MB(128.0), 3);
  const BlockId b = nn.blocks_of(f).front();
  nn.delete_file(f);
  EXPECT_EQ(nn.num_files(), 0u);
  EXPECT_EQ(nn.num_blocks(), 0u);
  EXPECT_FALSE(nn.lookup("/a").has_value());
  EXPECT_THROW((void)nn.locations(b), std::invalid_argument);
}

TEST(Dfs, WriteFilePlacesAllReplicas) {
  Dfs dfs(Config(), Rng(1));
  const FileId f = dfs.write_file("/data", GB(1.0));
  for (BlockId b : dfs.blocks_of(f)) {
    const auto& locs = dfs.locations(b);
    EXPECT_EQ(locs.size(), 3u);
    // Replicas on distinct nodes.
    std::set<NodeId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), locs.size());
    for (NodeId n : locs) EXPECT_LT(n.value(), dfs.num_nodes());
  }
}

TEST(Dfs, BytesOnTracksPlacement) {
  Dfs dfs(Config(4, 2), Rng(2));
  dfs.write_file("/data", MB(256.0));
  double total = 0.0;
  for (std::size_t n = 0; n < dfs.num_nodes(); ++n) {
    total += dfs.bytes_on(NodeId(static_cast<NodeId::value_type>(n)));
  }
  EXPECT_DOUBLE_EQ(total, MB(256.0) * 2);  // 2 replicas of every byte
}

TEST(Dfs, ExplicitReplicationOverride) {
  Dfs dfs(Config(10, 3), Rng(3));
  const FileId f = dfs.write_file("/data", MB(128.0), 5);
  EXPECT_EQ(dfs.locations(dfs.blocks_of(f).front()).size(), 5u);
}

TEST(Dfs, RejectsReplicationBeyondClusterSize) {
  Dfs dfs(Config(3), Rng(4));
  EXPECT_THROW(dfs.write_file("/data", MB(10.0), 4), std::invalid_argument);
}

TEST(Dfs, BoostReplicationAddsDistinctNodes) {
  Dfs dfs(Config(10, 2), Rng(5));
  const FileId f = dfs.write_file("/hot", MB(256.0));
  dfs.boost_replication(f, 3);
  for (BlockId b : dfs.blocks_of(f)) {
    const auto& locs = dfs.locations(b);
    EXPECT_EQ(locs.size(), 5u);
    std::set<NodeId> unique(locs.begin(), locs.end());
    EXPECT_EQ(unique.size(), 5u);
  }
}

TEST(Dfs, BoostZeroIsNoop) {
  Dfs dfs(Config(), Rng(6));
  const FileId f = dfs.write_file("/a", MB(128.0));
  dfs.boost_replication(f, 0);
  EXPECT_EQ(dfs.locations(dfs.blocks_of(f).front()).size(), 3u);
}

TEST(Dfs, DeterministicForSameSeed) {
  Dfs a(Config(), Rng(77));
  Dfs b(Config(), Rng(77));
  const FileId fa = a.write_file("/d", GB(2.0));
  const FileId fb = b.write_file("/d", GB(2.0));
  ASSERT_EQ(a.blocks_of(fa).size(), b.blocks_of(fb).size());
  for (std::size_t i = 0; i < a.blocks_of(fa).size(); ++i) {
    EXPECT_EQ(a.locations(a.blocks_of(fa)[i]), b.locations(b.blocks_of(fb)[i]));
  }
}

TEST(NameNode, BlocksOnTracksReplicaChurn) {
  NameNode nn;
  const FileId f = nn.create_file("/a", MB(300.0), MB(128.0), 3);
  const BlockId b0 = nn.blocks_of(f)[0];
  const BlockId b1 = nn.blocks_of(f)[1];
  nn.add_replica(b0, NodeId(2));
  nn.add_replica(b1, NodeId(2));
  nn.add_replica(b1, NodeId(4));
  EXPECT_EQ(nn.blocks_on(NodeId(2)), (std::set<BlockId>{b0, b1}));
  EXPECT_EQ(nn.blocks_on(NodeId(4)), (std::set<BlockId>{b1}));
  EXPECT_TRUE(nn.blocks_on(NodeId(7)).empty());
  nn.remove_replica(b1, NodeId(2));
  EXPECT_EQ(nn.blocks_on(NodeId(2)), (std::set<BlockId>{b0}));
  nn.delete_file(f);
  EXPECT_TRUE(nn.blocks_on(NodeId(2)).empty());
  EXPECT_TRUE(nn.blocks_on(NodeId(4)).empty());
}

/// Two identically seeded filesystems with several failures applied must
/// agree block-for-block between the indexed failover path (node->blocks
/// index + order-statistics target sampling) and the seed full-scan
/// reference — the two consume identical RNG draws by construction.
TEST(Dfs, IndexedFailoverMatchesReferenceForFixedSeed) {
  for (const std::uint64_t seed : {11u, 29u, 47u, 63u, 81u}) {
    DfsConfig indexed_config = Config(12, 3);
    indexed_config.indexed_failover = true;
    DfsConfig reference_config = indexed_config;
    reference_config.indexed_failover = false;
    Dfs indexed(indexed_config, Rng(seed));
    Dfs reference(reference_config, Rng(seed));

    std::vector<FileId> indexed_files;
    std::vector<FileId> reference_files;
    for (int i = 0; i < 6; ++i) {
      const std::string path = "/f" + std::to_string(i);
      indexed_files.push_back(indexed.write_file(path, MB(400.0)));
      reference_files.push_back(reference.write_file(path, MB(400.0)));
    }

    auto live_without = [](std::initializer_list<NodeId::value_type> dead) {
      std::vector<NodeId> live;
      for (NodeId::value_type n = 0; n < 12; ++n) {
        if (std::find(dead.begin(), dead.end(), n) == dead.end()) {
          live.emplace_back(n);
        }
      }
      return live;
    };
    indexed.fail_node(NodeId(3), live_without({3}));
    reference.fail_node(NodeId(3), live_without({3}));
    indexed.fail_node(NodeId(7), live_without({3, 7}));
    reference.fail_node(NodeId(7), live_without({3, 7}));

    for (std::size_t i = 0; i < indexed_files.size(); ++i) {
      const auto& ib = indexed.blocks_of(indexed_files[i]);
      const auto& rb = reference.blocks_of(reference_files[i]);
      ASSERT_EQ(ib.size(), rb.size());
      for (std::size_t k = 0; k < ib.size(); ++k) {
        EXPECT_EQ(indexed.locations(ib[k]), reference.locations(rb[k]))
            << "seed=" << seed << " file=" << i << " block=" << k;
      }
    }
    for (NodeId::value_type n = 0; n < 12; ++n) {
      EXPECT_EQ(indexed.bytes_on(NodeId(n)), reference.bytes_on(NodeId(n)))
          << "seed=" << seed << " node=" << n;
    }
  }
}

TEST(Dfs, IndexedFailoverFallsBackOnUnsortedLiveNodes) {
  // The order-statistics sampler needs an ascending live list; an unsorted
  // one must take the reference path and still match a reference twin fed
  // the same (unsorted) list.
  DfsConfig indexed_config = Config(10, 2);
  indexed_config.indexed_failover = true;
  DfsConfig reference_config = indexed_config;
  reference_config.indexed_failover = false;
  Dfs indexed(indexed_config, Rng(5));
  Dfs reference(reference_config, Rng(5));
  const FileId fi = indexed.write_file("/d", MB(600.0));
  const FileId fr = reference.write_file("/d", MB(600.0));
  const std::vector<NodeId> shuffled{NodeId(9), NodeId(1), NodeId(4),
                                     NodeId(8), NodeId(2), NodeId(6),
                                     NodeId(5), NodeId(7), NodeId(3)};
  indexed.fail_node(NodeId(0), shuffled);
  reference.fail_node(NodeId(0), shuffled);
  const auto& ib = indexed.blocks_of(fi);
  const auto& rb = reference.blocks_of(fr);
  ASSERT_EQ(ib.size(), rb.size());
  for (std::size_t k = 0; k < ib.size(); ++k) {
    EXPECT_EQ(indexed.locations(ib[k]), reference.locations(rb[k]));
  }
}

TEST(Dfs, ReplicaListenerSeesFailoverChurn) {
  DfsConfig config = Config(8, 2);
  Dfs dfs(config, Rng(21));
  const FileId f = dfs.write_file("/a", MB(256.0));
  struct Event {
    BlockId block;
    NodeId node;
    bool added;
  };
  std::vector<Event> events;
  const Dfs::ListenerId id = dfs.add_replica_listener(
      [&events](BlockId b, NodeId n, bool added) {
        events.push_back({b, n, added});
      });
  std::vector<NodeId> live;
  for (NodeId::value_type n = 1; n < 8; ++n) live.emplace_back(n);
  dfs.fail_node(NodeId(0), live);
  for (const Event& e : events) {
    if (!e.added) {
      EXPECT_EQ(e.node, NodeId(0));  // only the dead node loses replicas
    } else {
      EXPECT_TRUE(dfs.is_local(e.block, e.node));  // adds landed
    }
  }
  // Every add is paired with the dead-node remove of the same block.
  const auto adds = std::count_if(events.begin(), events.end(),
                                  [](const Event& e) { return e.added; });
  const auto removes = static_cast<std::ptrdiff_t>(events.size()) - adds;
  EXPECT_EQ(adds, removes);
  dfs.remove_replica_listener(id);
  dfs.boost_replication(f, 1);
  EXPECT_EQ(adds + removes, static_cast<std::ptrdiff_t>(events.size()));
}

TEST(Placement, SampleDistinctNodesExcludes) {
  Rng rng(8);
  const std::vector<NodeId> exclude{NodeId(0), NodeId(1)};
  for (int trial = 0; trial < 20; ++trial) {
    const auto nodes = SampleDistinctNodes(5, 3, exclude, rng);
    EXPECT_EQ(nodes.size(), 3u);
    std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), 3u);
    for (NodeId n : nodes) {
      EXPECT_NE(n, NodeId(0));
      EXPECT_NE(n, NodeId(1));
    }
  }
}

TEST(Placement, SampleDistinctNodesRejectsOverflow) {
  Rng rng(9);
  EXPECT_THROW(SampleDistinctNodes(3, 4, {}, rng), std::invalid_argument);
  EXPECT_THROW(SampleDistinctNodes(3, 2, {NodeId(0), NodeId(1)}, rng),
               std::invalid_argument);
}

TEST(Placement, RandomCoversClusterEventually) {
  DfsConfig config = Config(8, 1);
  Dfs dfs(config, Rng(10));
  for (int i = 0; i < 40; ++i) {
    dfs.write_file("/f" + std::to_string(i), MB(128.0));
  }
  int nodes_with_data = 0;
  for (std::size_t n = 0; n < 8; ++n) {
    if (dfs.bytes_on(NodeId(static_cast<NodeId::value_type>(n))) > 0) {
      ++nodes_with_data;
    }
  }
  EXPECT_GE(nodes_with_data, 7);
}

TEST(Placement, LoadBalancedIsMoreEvenThanRandom) {
  auto spread = [](Dfs& dfs) {
    for (int i = 0; i < 60; ++i) {
      dfs.write_file("/f" + std::to_string(i), MB(128.0));
    }
    double max_bytes = 0.0;
    double min_bytes = 1e18;
    for (std::size_t n = 0; n < dfs.num_nodes(); ++n) {
      const double b = dfs.bytes_on(NodeId(static_cast<NodeId::value_type>(n)));
      max_bytes = std::max(max_bytes, b);
      min_bytes = std::min(min_bytes, b);
    }
    return max_bytes - min_bytes;
  };
  DfsConfig config = Config(10, 1);
  Dfs random_dfs(config, Rng(20));
  Dfs balanced_dfs(config, Rng(20),
                   std::make_unique<LoadBalancedPlacement>(4));
  EXPECT_LE(spread(balanced_dfs), spread(random_dfs));
}

}  // namespace
}  // namespace custody::dfs
