// Equivalence suite for the indexed dispatch path (the PR-4 contract):
// RunExperiment with scheduler.indexed = true (ReadyTaskIndex lookups in
// TaskScheduler::pick, consider_offer, pending_demand, wanted_executors)
// must produce results field-for-field identical — exact double compare —
// to the seed full-scan reference path, for every manager, every scheduler
// policy, and across many seeds, including the cache / speculation /
// failure extensions that exercise the replica- and cache-change listener
// paths of the index.
//
// Wall-clock diagnostic fields measure real time, not simulated behaviour,
// and are the only fields excluded (same contract as sweep_test.cpp).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/harness.h"

namespace custody::workload {
namespace {

ExperimentConfig BaseConfig(ManagerKind manager, app::SchedulerKind kind,
                            std::uint64_t seed) {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.executors_per_node = 2;
  config.manager = manager;
  config.kinds = {WorkloadKind::kWordCount, WorkloadKind::kSort};
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 4;
  config.trace.files_per_kind = 3;
  config.scheduler.kind = kind;
  config.seed = seed;
  return config;
}

void ExpectSummariesIdentical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.p25, b.p25);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p75, b.p75);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.max, b.max);
}

/// Exact comparison of every deterministic field of two results.
void ExpectResultsIdentical(const ExperimentResult& a,
                            const ExperimentResult& b) {
  EXPECT_EQ(a.manager_name, b.manager_name);
  {
    SCOPED_TRACE("job_locality");
    ExpectSummariesIdentical(a.job_locality, b.job_locality);
  }
  EXPECT_EQ(a.overall_task_locality_percent, b.overall_task_locality_percent);
  EXPECT_EQ(a.local_job_percent, b.local_job_percent);
  {
    SCOPED_TRACE("jct");
    ExpectSummariesIdentical(a.jct, b.jct);
  }
  {
    SCOPED_TRACE("input_stage");
    ExpectSummariesIdentical(a.input_stage, b.input_stage);
  }
  {
    SCOPED_TRACE("sched_delay");
    ExpectSummariesIdentical(a.sched_delay, b.sched_delay);
  }
  ASSERT_EQ(a.per_app_local_job_fraction.size(),
            b.per_app_local_job_fraction.size());
  for (std::size_t i = 0; i < a.per_app_local_job_fraction.size(); ++i) {
    EXPECT_EQ(a.per_app_local_job_fraction[i], b.per_app_local_job_fraction[i])
        << "per_app_local_job_fraction[" << i << "]";
  }
  EXPECT_EQ(a.manager_stats.allocation_rounds,
            b.manager_stats.allocation_rounds);
  EXPECT_EQ(a.manager_stats.executors_granted,
            b.manager_stats.executors_granted);
  EXPECT_EQ(a.manager_stats.executors_released,
            b.manager_stats.executors_released);
  EXPECT_EQ(a.manager_stats.offers_made, b.manager_stats.offers_made);
  EXPECT_EQ(a.manager_stats.offers_rejected, b.manager_stats.offers_rejected);
  EXPECT_EQ(a.manager_stats.executors_scanned,
            b.manager_stats.executors_scanned);
  EXPECT_EQ(a.manager_stats.apps_considered, b.manager_stats.apps_considered);
  EXPECT_EQ(a.round_wall.count, b.round_wall.count);
  EXPECT_EQ(a.round_yield_fraction, b.round_yield_fraction);
  EXPECT_EQ(a.net_stats.recomputes_requested, b.net_stats.recomputes_requested);
  EXPECT_EQ(a.net_stats.recomputes_run, b.net_stats.recomputes_run);
  EXPECT_EQ(a.net_stats.recomputes_batched, b.net_stats.recomputes_batched);
  EXPECT_EQ(a.net_stats.flows_scanned, b.net_stats.flows_scanned);
  EXPECT_EQ(a.net_stats.links_scanned, b.net_stats.links_scanned);
  EXPECT_EQ(a.net_stats.rounds, b.net_stats.rounds);
  EXPECT_EQ(a.net_bytes_delivered, b.net_bytes_delivered);
  EXPECT_EQ(a.cache_insertions, b.cache_insertions);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.speculative_wins, b.speculative_wins);
  EXPECT_EQ(a.nodes_failed, b.nodes_failed);
  EXPECT_EQ(a.launches_local, b.launches_local);
  EXPECT_EQ(a.launches_covered_busy, b.launches_covered_busy);
  EXPECT_EQ(a.launches_uncovered, b.launches_uncovered);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
}

/// Runs `config` once indexed and once on the reference scan and demands
/// bit-identical results.
void ExpectPathsAgree(ExperimentConfig config) {
  config.scheduler.indexed = true;
  const ExperimentResult indexed = RunExperiment(config);
  config.scheduler.indexed = false;
  const ExperimentResult reference = RunExperiment(config);
  ExpectResultsIdentical(indexed, reference);
}

constexpr app::SchedulerKind kKinds[] = {app::SchedulerKind::kDelay,
                                         app::SchedulerKind::kLocalityPreferred,
                                         app::SchedulerKind::kFifo};

const char* KindName(app::SchedulerKind kind) {
  switch (kind) {
    case app::SchedulerKind::kDelay:
      return "delay";
    case app::SchedulerKind::kLocalityPreferred:
      return "locality";
    case app::SchedulerKind::kFifo:
      return "fifo";
  }
  return "?";
}

/// Every (manager, scheduler kind) cell over `seeds_per_cell` distinct
/// seeds.  Seeds are disjoint across cells so the suite as a whole covers
/// kinds * seeds_per_cell * 4 distinct seeds.
void SweepManager(ManagerKind manager, std::uint64_t seed_base,
                  int seeds_per_cell) {
  std::uint64_t seed = seed_base;
  for (const app::SchedulerKind kind : kKinds) {
    for (int i = 0; i < seeds_per_cell; ++i, ++seed) {
      SCOPED_TRACE(std::string("kind=") + KindName(kind) +
                   " seed=" + std::to_string(seed));
      ExpectPathsAgree(BaseConfig(manager, kind, seed));
    }
  }
}

// 4 managers x 3 kinds x 4 seeds = 48 distinct seeds; the feature variants
// below add 12 more (60 total, all distinct).
TEST(DispatchEquivalence, CustodyAllKindsManySeeds) {
  SweepManager(ManagerKind::kCustody, 100, 4);
}

TEST(DispatchEquivalence, StandaloneAllKindsManySeeds) {
  SweepManager(ManagerKind::kStandalone, 200, 4);
}

TEST(DispatchEquivalence, PoolAllKindsManySeeds) {
  SweepManager(ManagerKind::kPool, 300, 4);
}

TEST(DispatchEquivalence, OfferAllKindsManySeeds) {
  SweepManager(ManagerKind::kOffer, 400, 4);
}

// The block cache feeds the index through BlockCache change listeners
// (insert / evict); a hot zipf-skewed dataset makes both fire constantly.
TEST(DispatchEquivalence, CachedWorkloadAgrees) {
  for (std::uint64_t seed = 500; seed < 504; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExperimentConfig config =
        BaseConfig(ManagerKind::kCustody, app::SchedulerKind::kDelay, seed);
    config.cache_mb_per_node = 256.0;
    config.trace.zipf_skew = 1.2;
    ExpectPathsAgree(config);
  }
}

// Node failures drive Dfs replica listeners (re-replication adds, dead-node
// removes) plus task resets (task_ready re-insertions after reset_task).
TEST(DispatchEquivalence, FailuresAndSpeculationAgree) {
  for (std::uint64_t seed = 600; seed < 604; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExperimentConfig config =
        BaseConfig(ManagerKind::kCustody, app::SchedulerKind::kDelay, seed);
    config.node_failures = 2;
    config.failure_start = 10.0;
    config.failure_interval = 15.0;
    config.slow_node_fraction = 0.2;
    config.speculation = true;
    ExpectPathsAgree(config);
  }
}

// Cache + failures together: a failed node loses cached copies too, so the
// index sees interleaved replica and cache removal notifications.
TEST(DispatchEquivalence, CacheWithFailuresAgrees) {
  for (std::uint64_t seed = 700; seed < 704; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExperimentConfig config =
        BaseConfig(ManagerKind::kOffer, app::SchedulerKind::kDelay, seed);
    config.cache_mb_per_node = 256.0;
    config.trace.zipf_skew = 1.1;
    config.node_failures = 2;
    config.failure_start = 8.0;
    config.failure_interval = 12.0;
    ExpectPathsAgree(config);
  }
}


// Regression, seed 702: the index once computed task_ready memberships from
// BlockCache::merged_locations, a snapshot rebuilt only on cache churn.  A
// node failure moving a *disk* replica under a cached block left the
// snapshot stale, so tasks becoming ready afterwards indexed the dead node
// and missed the re-replication target.  Either feature alone agreed; only
// the combination diverged.
TEST(DispatchEquivalence, OfferCacheOnlyRegressionSeed) {
  ExperimentConfig config =
      BaseConfig(ManagerKind::kOffer, app::SchedulerKind::kDelay, 702);
  config.cache_mb_per_node = 256.0;
  config.trace.zipf_skew = 1.1;
  ExpectPathsAgree(config);
}

TEST(DispatchEquivalence, OfferFailuresOnlyRegressionSeed) {
  ExperimentConfig config =
      BaseConfig(ManagerKind::kOffer, app::SchedulerKind::kDelay, 702);
  config.node_failures = 2;
  config.failure_start = 8.0;
  config.failure_interval = 12.0;
  ExpectPathsAgree(config);
}

}  // namespace
}  // namespace custody::workload
