// Tests for the max-flow core and the maximum concurrent flow relaxation
// (the paper's Fig.-2 construction).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/flow_network.h"

namespace custody::core {
namespace {

// ---------- Dinic -----------------------------------------------------------

TEST(MaxFlow, SingleEdge) {
  MaxFlow flow(2);
  const int e = flow.add_edge(0, 1, 7);
  EXPECT_EQ(flow.solve(0, 1), 7);
  EXPECT_EQ(flow.flow_on(e), 7);
}

TEST(MaxFlow, SeriesBottleneck) {
  MaxFlow flow(3);
  flow.add_edge(0, 1, 10);
  flow.add_edge(1, 2, 4);
  EXPECT_EQ(flow.solve(0, 2), 4);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 3);
  flow.add_edge(1, 3, 3);
  flow.add_edge(0, 2, 5);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.solve(0, 3), 8);
}

TEST(MaxFlow, ClassicCLRSNetwork) {
  // The textbook example with max flow 23.
  MaxFlow flow(6);
  flow.add_edge(0, 1, 16);
  flow.add_edge(0, 2, 13);
  flow.add_edge(1, 2, 10);
  flow.add_edge(2, 1, 4);
  flow.add_edge(1, 3, 12);
  flow.add_edge(3, 2, 9);
  flow.add_edge(2, 4, 14);
  flow.add_edge(4, 3, 7);
  flow.add_edge(3, 5, 20);
  flow.add_edge(4, 5, 4);
  EXPECT_EQ(flow.solve(0, 5), 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow flow(4);
  flow.add_edge(0, 1, 5);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.solve(0, 3), 0);
}

TEST(MaxFlow, NeedsAtLeastOneVertex) {
  EXPECT_THROW(MaxFlow(0), std::invalid_argument);
}

// ---------- Concurrent flow instance ----------------------------------------

/// Helper: a two-app instance mirroring the paper's Fig. 2 — app 0 has
/// tasks {T11, T12}, app 1 has {T21}; three executors.
ConcurrentFlowInstance Fig2Instance() {
  ConcurrentFlowInstance instance;
  instance.demands = {2, 1};
  instance.task_app = {0, 0, 1};
  instance.task_execs = {{0}, {0, 1}, {1, 2}};
  instance.num_executors = 3;
  return instance;
}

TEST(ConcurrentFlow, Fig2IsFullySatisfiable) {
  // T11->E1, T12->E2, T21->E3 satisfies every demand.
  const auto result = SolveMaxConcurrentFlow(Fig2Instance());
  EXPECT_DOUBLE_EQ(result.lambda, 1.0);
  EXPECT_DOUBLE_EQ(result.satisfied[0], 2.0);
  EXPECT_DOUBLE_EQ(result.satisfied[1], 1.0);
}

TEST(ConcurrentFlow, ContendedExecutorHalvesLambda) {
  // Both apps need the single executor 0 for their only task.
  ConcurrentFlowInstance instance;
  instance.demands = {1, 1};
  instance.task_app = {0, 1};
  instance.task_execs = {{0}, {0}};
  instance.num_executors = 1;
  const auto result = SolveMaxConcurrentFlow(instance);
  EXPECT_NEAR(result.lambda, 0.5, 2e-3);
}

TEST(ConcurrentFlow, TaskWithNoExecutorCapsLambdaAtZero) {
  ConcurrentFlowInstance instance;
  instance.demands = {1};
  instance.task_app = {0};
  instance.task_execs = {{}};
  instance.num_executors = 1;
  const auto result = SolveMaxConcurrentFlow(instance);
  EXPECT_NEAR(result.lambda, 0.0, 2e-3);
}

TEST(ConcurrentFlow, EmptyInstanceIsTriviallySatisfied) {
  ConcurrentFlowInstance instance;
  EXPECT_DOUBLE_EQ(SolveMaxConcurrentFlow(instance).lambda, 1.0);
  instance.demands = {0, 0};
  EXPECT_DOUBLE_EQ(SolveMaxConcurrentFlow(instance).lambda, 1.0);
}

TEST(ConcurrentFlow, BuildFromDemands) {
  std::vector<AppDemand> demands(2);
  demands[0].app = AppId(0);
  demands[0].jobs.push_back(
      {0, 2, {{1, BlockId(0)}, {2, BlockId(1)}}});
  demands[1].app = AppId(1);
  demands[1].jobs.push_back({1, 1, {{3, BlockId(2)}}});

  const std::vector<ExecutorInfo> executors{
      {ExecutorId(0), NodeId(0)}, {ExecutorId(1), NodeId(1)}};
  std::vector<std::vector<NodeId>> locations{
      {NodeId(0)}, {NodeId(0), NodeId(1)}, {NodeId(5)}};
  const auto locate = [&locations](BlockId b) -> const std::vector<NodeId>& {
    return locations[b.value()];
  };

  const auto instance = BuildConcurrentFlowInstance(demands, executors, locate);
  EXPECT_EQ(instance.demands, (std::vector<int>{2, 1}));
  EXPECT_EQ(instance.task_app, (std::vector<int>{0, 0, 1}));
  ASSERT_EQ(instance.task_execs.size(), 3u);
  EXPECT_EQ(instance.task_execs[0], (std::vector<int>{0}));
  EXPECT_EQ(instance.task_execs[1], (std::vector<int>{0, 1}));
  EXPECT_TRUE(instance.task_execs[2].empty());  // block on node w/o executor
}

TEST(ConcurrentFlow, MaxTasksSatisfiedAlone) {
  const auto instance = Fig2Instance();
  EXPECT_EQ(MaxTasksSatisfiedAlone(instance, 0), 2);
  EXPECT_EQ(MaxTasksSatisfiedAlone(instance, 1), 1);
}

// Property: λ* from the fractional relaxation never exceeds what any app
// could get alone (sanity upper-bound ordering), and is in [0, 1].
TEST(ConcurrentFlow, PropertyLambdaBounds) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    ConcurrentFlowInstance instance;
    const int num_apps = rng.uniform_int(1, 3);
    instance.num_executors = rng.uniform_int(1, 6);
    for (int a = 0; a < num_apps; ++a) {
      const int tasks = rng.uniform_int(1, 4);
      instance.demands.push_back(tasks);
      for (int t = 0; t < tasks; ++t) {
        instance.task_app.push_back(a);
        std::vector<int> execs;
        for (int e = 0; e < instance.num_executors; ++e) {
          if (rng.bernoulli(0.5)) execs.push_back(e);
        }
        instance.task_execs.push_back(execs);
      }
    }
    const auto result = SolveMaxConcurrentFlow(instance);
    EXPECT_GE(result.lambda, 0.0);
    EXPECT_LE(result.lambda, 1.0);
    for (std::size_t a = 0; a < instance.demands.size(); ++a) {
      // Allow the binary-search resolution (1e-3 of each demand).
      EXPECT_LE(result.satisfied[a],
                MaxTasksSatisfiedAlone(instance, static_cast<int>(a)) +
                    1e-3 * instance.demands[a] + 1e-6);
    }
  }
}

}  // namespace
}  // namespace custody::core
