// The HTTP server primitives, exercised over real loopback sockets:
// framing, keep-alive, every input limit, and the guarantee that hostile
// or broken bytes get a clean error response — never a crash or a hang.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "svc/http.h"

namespace custody::svc {
namespace {

/// An echo handler: answers with method, path, query and body length.
HttpResponse EchoHandler(const HttpRequest& request) {
  HttpResponse response;
  response.body = request.method + " " + request.path +
                  (request.query.empty() ? "" : "?" + request.query) + " " +
                  std::to_string(request.body.size());
  return response;
}

class HttpServerTest : public ::testing::Test {
 protected:
  void Start(HttpLimits limits = HttpLimits{}, int workers = 2) {
    server_ = std::make_unique<HttpServer>(EchoHandler, limits);
    server_->start(0, workers);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, ServesASimpleRequest) {
  Start();
  const ClientResponse response = Fetch(server_->port(), "GET", "/hello");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "GET /hello 0");
  EXPECT_EQ(response.headers.at("content-type"), "application/json");
}

TEST_F(HttpServerTest, PassesQueryAndBodyThrough) {
  Start();
  const ClientResponse response =
      Fetch(server_->port(), "POST", "/submit?dry=1", "0123456789");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "POST /submit?dry=1 10");
}

TEST_F(HttpServerTest, KeepAliveServesPipelinedRequests) {
  Start();
  const std::string two =
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  const std::string raw = SendRaw(server_->port(), two);
  EXPECT_NE(raw.find("GET /a 0"), std::string::npos);
  EXPECT_NE(raw.find("GET /b 0"), std::string::npos);
  // First response keeps the connection, second closes it.
  EXPECT_NE(raw.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close"), std::string::npos);
}

TEST_F(HttpServerTest, Http10DefaultsToClose) {
  Start();
  // No Connection header on an HTTP/1.0 request: the protocol default is
  // close, so a strict 1.0 client waiting for EOF must not stall on the
  // recv timeout.
  const std::string raw = SendRaw(
      server_->port(), "GET /old HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_NE(raw.find("GET /old 0"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close"), std::string::npos);
  EXPECT_EQ(raw.find("Connection: keep-alive"), std::string::npos);
}

TEST_F(HttpServerTest, Http10ExplicitKeepAliveIsHonored) {
  Start();
  const std::string two =
      "GET /a HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
      "GET /b HTTP/1.0\r\n\r\n";
  const std::string raw = SendRaw(server_->port(), two);
  // Both pipelined requests are answered: the first keeps the connection
  // open (explicit opt-in), the second falls back to the 1.0 default.
  EXPECT_NE(raw.find("GET /a 0"), std::string::npos);
  EXPECT_NE(raw.find("GET /b 0"), std::string::npos);
  EXPECT_NE(raw.find("Connection: keep-alive"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  Start(limits);
  const std::string raw = SendRaw(
      server_->port(), "GET / HTTP/1.1\r\nPadding: " +
                           std::string(1024, 'x') + "\r\n\r\n");
  EXPECT_NE(raw.find("431"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedBodyIs413WithoutReadingIt) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  Start(limits);
  const std::string raw = SendRaw(
      server_->port(),
      "POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n" +
          std::string(128, 'y'));
  EXPECT_NE(raw.find("413"), std::string::npos);
}

TEST_F(HttpServerTest, TruncatedHeaderIs400) {
  Start();
  // SendRaw half-closes after the bytes: the server sees EOF mid-header.
  const std::string raw = SendRaw(server_->port(), "GET /partial HTT");
  EXPECT_NE(raw.find("400"), std::string::npos);
}

TEST_F(HttpServerTest, TruncatedBodyIs408) {
  Start();
  const std::string raw = SendRaw(
      server_->port(),
      "POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nonly-part");
  EXPECT_NE(raw.find("408"), std::string::npos);
}

TEST_F(HttpServerTest, SlowlorisConnectionTimesOutWith408) {
  HttpLimits limits;
  limits.recv_timeout_seconds = 1;
  Start(limits);
  // Send a header fragment and then just hold the connection open: the
  // recv timeout must answer 408 instead of wedging the worker.
  const auto start = std::chrono::steady_clock::now();
  const std::string raw =
      SendRaw(server_->port(), "GET /slow HTTP/1.1\r\nHos");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Our client half-closes, so the server answers 400 fast; a true
  // slowloris (no close) is covered by the timeout below never exceeding
  // ~recv_timeout.
  EXPECT_TRUE(raw.find("400") != std::string::npos ||
              raw.find("408") != std::string::npos)
      << raw;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

TEST_F(HttpServerTest, GarbageRequestLineIs400) {
  Start();
  EXPECT_NE(SendRaw(server_->port(), "NONSENSE\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(SendRaw(server_->port(), "\r\n\r\n").find("400"),
            std::string::npos);
}

TEST_F(HttpServerTest, UnsupportedProtocolIs501) {
  Start();
  EXPECT_NE(
      SendRaw(server_->port(), "GET / HTTP/0.9\r\n\r\n").find("501"),
      std::string::npos);
  EXPECT_NE(SendRaw(server_->port(),
                    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .find("501"),
            std::string::npos);
}

TEST_F(HttpServerTest, HandlerExceptionsBecome500) {
  server_ = std::make_unique<HttpServer>(
      [](const HttpRequest&) -> HttpResponse {
        throw std::runtime_error("boom");
      });
  server_->start(0, 1);
  const ClientResponse response = Fetch(server_->port(), "GET", "/");
  EXPECT_EQ(response.status, 500);
  // The internal message stays off the wire.
  EXPECT_EQ(response.body.find("boom"), std::string::npos);
}

TEST_F(HttpServerTest, ConcurrentClientsAllGetAnswers) {
  Start(HttpLimits{}, /*workers=*/3);
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([this, t, &ok] {
      for (int i = 0; i < 8; ++i) {
        const std::string path =
            "/c" + std::to_string(t) + "/" + std::to_string(i);
        const ClientResponse response =
            Fetch(server_->port(), "GET", path);
        if (response.status == 200 &&
            response.body == "GET " + path + " 0") {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(ok.load(), 32);
}

/// Raw loopback connect (no request bytes) — lets a test occupy a queue
/// slot without a worker being involved.
int RawConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(HttpServerTest, PendingConnectionOverflowGets503) {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  HttpLimits limits;
  limits.max_pending_connections = 1;
  server_ = std::make_unique<HttpServer>(
      [&entered, &release](const HttpRequest&) -> HttpResponse {
        entered.store(true);
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return HttpResponse{};
      },
      limits);
  server_->start(0, /*workers=*/1);
  // Occupy the only worker: this request parks inside the handler.
  std::thread blocked([this] {
    EXPECT_EQ(Fetch(server_->port(), "GET", "/block").status, 200);
  });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fill the single queue slot with an idle connection (accepted and
  // enqueued before any later arrival — the acceptor is one thread).
  const int parked = RawConnect(server_->port());
  ASSERT_GE(parked, 0);
  // The next connection overflows the queue: refused with 503, closed.
  const std::string raw = SendRaw(server_->port(), "GET /over HTTP/1.1\r\n");
  EXPECT_NE(raw.find("503"), std::string::npos) << raw;
  release.store(true);
  blocked.join();
  ::close(parked);
}

TEST_F(HttpServerTest, StopIsIdempotentAndJoinsEverything) {
  Start();
  const std::uint16_t port = server_->port();
  EXPECT_EQ(Fetch(port, "GET", "/x").status, 200);
  server_->stop();
  server_->stop();  // second stop is a no-op
  EXPECT_THROW(Fetch(port, "GET", "/x"), std::runtime_error);
}

}  // namespace
}  // namespace custody::svc
