// Full-system integration tests: the paper's headline claims must hold on
// small-but-real experiments for every workload and for multiple seeds.
#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace custody::workload {
namespace {

ExperimentConfig BaseConfig(WorkloadKind kind, std::size_t nodes,
                            std::uint64_t seed) {
  ExperimentConfig config;
  config.num_nodes = nodes;
  config.kinds = {kind};
  config.trace.num_apps = 4;
  config.trace.jobs_per_app = 6;
  config.trace.files_per_kind = 8;
  config.seed = seed;
  return config;
}

class WorkloadIntegration
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, std::size_t>> {
};

TEST_P(WorkloadIntegration, CustodyImprovesLocalityAndJct) {
  const auto [kind, nodes] = GetParam();
  const Comparison cmp = CompareManagers(BaseConfig(kind, nodes, 42));

  // All jobs finish under both managers.
  EXPECT_EQ(cmp.baseline.jobs_completed, 24);
  EXPECT_EQ(cmp.custody.jobs_completed, 24);

  // Headline: Custody improves input-task locality ...
  EXPECT_GT(cmp.custody.job_locality.mean, cmp.baseline.job_locality.mean);
  // ... decisively (paper: +36.9% on average; our substrate: > +5 points).
  EXPECT_GT(cmp.custody.job_locality.mean - cmp.baseline.job_locality.mean,
            5.0);
  // ... and reduces mean job completion time.
  EXPECT_LT(cmp.custody.jct.mean, cmp.baseline.jct.mean);
  // Input stages specifically get faster (Fig. 9).
  EXPECT_LT(cmp.custody.input_stage.mean, cmp.baseline.input_stage.mean);
  // Scheduler delay drops (Fig. 10).
  EXPECT_LE(cmp.custody.sched_delay.mean, cmp.baseline.sched_delay.mean);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAndSizes, WorkloadIntegration,
    ::testing::Combine(::testing::Values(WorkloadKind::kPageRank,
                                         WorkloadKind::kWordCount,
                                         WorkloadKind::kSort),
                       ::testing::Values(std::size_t{16}, std::size_t{32})),
    [](const auto& info) {
      return std::string(WorkloadName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "nodes";
    });

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CustodyNeverLosesLocality) {
  const Comparison cmp = CompareManagers(
      BaseConfig(WorkloadKind::kWordCount, 20, GetParam()));
  EXPECT_GE(cmp.custody.job_locality.mean, cmp.baseline.job_locality.mean);
  EXPECT_EQ(cmp.custody.jobs_completed, cmp.baseline.jobs_completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 13u, 99u, 12345u));

TEST(Integration, CustodyLocalityIsStableAcrossClusterSizes) {
  // Paper Sec. VI-C: "the locality level under Custody is relatively
  // insensitive to the sizes of clusters."
  double min_locality = 101.0;
  double max_locality = -1.0;
  for (std::size_t nodes : {16u, 32u, 48u}) {
    auto config = BaseConfig(WorkloadKind::kWordCount, nodes, 42);
    config.manager = ManagerKind::kCustody;
    const auto result = RunExperiment(config);
    min_locality = std::min(min_locality, result.job_locality.mean);
    max_locality = std::max(max_locality, result.job_locality.mean);
  }
  EXPECT_LT(max_locality - min_locality, 10.0);
  EXPECT_GT(min_locality, 85.0);
}

TEST(Integration, OfferManagerBeatsNothingButWorks) {
  // The Mesos-style manager completes everything and pays offer churn.
  auto config = BaseConfig(WorkloadKind::kWordCount, 20, 42);
  config.manager = ManagerKind::kOffer;
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 24);
  EXPECT_GT(result.manager_stats.offers_made, 0u);
}

TEST(Integration, CustodyMaxMinFairnessAcrossApps) {
  // No application should be starved of local jobs while another feasts:
  // the spread of per-app local-job fractions stays small under Custody.
  auto config = BaseConfig(WorkloadKind::kWordCount, 24, 42);
  config.manager = ManagerKind::kCustody;
  const auto result = RunExperiment(config);
  double lo = 2.0;
  double hi = -1.0;
  for (double f : result.per_app_local_job_fraction) {
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_LE(hi - lo, 0.5);
  EXPECT_GT(lo, 0.0) << "an application was starved of local jobs";
}

TEST(Integration, DelaySchedulingWaitTradesDelayForLocality) {
  // Longer waits help the data-unaware baseline find local slots at the
  // cost of scheduler delay — the delay-scheduling trade-off.
  auto config = BaseConfig(WorkloadKind::kWordCount, 20, 42);
  config.manager = ManagerKind::kStandalone;
  config.scheduler.locality_wait = 0.0;
  const auto no_wait = RunExperiment(config);
  config.scheduler.locality_wait = 5.0;
  const auto with_wait = RunExperiment(config);
  EXPECT_GE(with_wait.job_locality.mean, no_wait.job_locality.mean);
  EXPECT_GE(with_wait.sched_delay.mean, no_wait.sched_delay.mean);
}

TEST(Integration, PopularityReplicationHelpsTheBaseline) {
  // Scarlett-style replication (Sec. VII) raises the chance that a random
  // executor set covers hot blocks, complementing Custody.
  auto config = BaseConfig(WorkloadKind::kWordCount, 20, 42);
  config.manager = ManagerKind::kStandalone;
  const auto plain = RunExperiment(config);
  config.dataset.popularity_replication = true;
  config.dataset.popularity_extra_replicas = 3;
  const auto boosted = RunExperiment(config);
  EXPECT_GE(boosted.job_locality.mean, plain.job_locality.mean - 2.0);
}

TEST(Integration, MixedWorkloadRuns) {
  auto config = BaseConfig(WorkloadKind::kWordCount, 24, 42);
  config.kinds = {WorkloadKind::kPageRank, WorkloadKind::kWordCount,
                  WorkloadKind::kSort};
  const Comparison cmp = CompareManagers(config);
  EXPECT_EQ(cmp.custody.jobs_completed, 24);
  EXPECT_GT(cmp.custody.job_locality.mean, cmp.baseline.job_locality.mean);
}

}  // namespace
}  // namespace custody::workload
