// Unit tests for the strict JsonReader: grammar round-trips plus the
// fail-loudly guarantees — truncated, bit-flipped or hostile input must
// throw a typed JsonParseError, never produce garbage values or UB.  The
// malformed-input suites mirror snapshot_test.cpp: truncation at every
// byte of a sample document, a bit flip at every byte, and a corpus of
// bad escape/UTF-8/number forms.
#include "common/json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace custody {
namespace {

/// A sample document touching every construct; no trailing whitespace, so
/// every strict prefix is invalid (the closing brace balances only at the
/// very end).
const char kSampleDoc[] =
    R"({"name":"custody \"svc\"","pi":3.14159,"neg":-0.5e-2,"zero":0,)"
    R"("big":1.7976931348623157e308,"flag":true,"off":false,"nothing":null,)"
    "\"escapes\":\"line\\nbreak\\ttab\\\\slash\\/"
    "\\u0041\\u00e9\\ud83d\\ude00\","
    R"("list":[1,2,[3,[4]],{"k":"v"}],"empty":{},"none":[]})";

JsonValue ParseSample() { return JsonReader::Parse(kSampleDoc); }

TEST(JsonReader, ParsesEveryConstruct) {
  const JsonValue doc = ParseSample();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->as_string(), "custody \"svc\"");
  EXPECT_DOUBLE_EQ(doc.find("pi")->as_number(), 3.14159);
  EXPECT_DOUBLE_EQ(doc.find("neg")->as_number(), -0.5e-2);
  EXPECT_EQ(doc.find("zero")->as_number(), 0.0);
  EXPECT_EQ(doc.find("big")->as_number(), 1.7976931348623157e308);
  EXPECT_TRUE(doc.find("flag")->as_bool());
  EXPECT_FALSE(doc.find("off")->as_bool());
  EXPECT_TRUE(doc.find("nothing")->is_null());
  // \u0041 = 'A', \u00e9 = e-acute (2-byte UTF-8), \ud83d\ude00 = a
  // surrogate pair decoding to a 4-byte UTF-8 emoji.
  EXPECT_EQ(doc.find("escapes")->as_string(),
            "line\nbreak\ttab\\slash/A\xc3\xa9\xf0\x9f\x98\x80");
  const auto& list = doc.find("list")->items();
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0].as_number(), 1.0);
  EXPECT_EQ(list[2].items()[1].items()[0].as_number(), 4.0);
  EXPECT_EQ(list[3].find("k")->as_string(), "v");
  EXPECT_TRUE(doc.find("empty")->members().empty());
  EXPECT_TRUE(doc.find("none")->items().empty());
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(JsonReader, ObjectKeepsInsertionOrder) {
  const JsonValue doc = JsonReader::Parse(R"({"z":1,"a":2,"m":3})");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(JsonReader, AcceptsScalarsAtTopLevelAndSurroundingWhitespace) {
  EXPECT_EQ(JsonReader::Parse(" \t\r\n 42 \n").as_number(), 42.0);
  EXPECT_EQ(JsonReader::Parse("\"x\"").as_string(), "x");
  EXPECT_TRUE(JsonReader::Parse("null").is_null());
  EXPECT_TRUE(JsonReader::Parse("true").as_bool());
}

TEST(JsonReader, RoundTripsThroughJsonQuote) {
  // Every string JsonQuote emits must parse back to the original bytes —
  // the emitter and parser agree on the escape dialect.
  const std::string nasty = "quote\" slash\\ ctl\x01\x1f nl\n tab\t ok";
  EXPECT_EQ(JsonReader::Parse(JsonQuote(nasty)).as_string(), nasty);
}

TEST(JsonReader, TypeMismatchThrowsNamingTheKind) {
  const JsonValue doc = JsonReader::Parse("[1]");
  EXPECT_THROW((void)doc.as_number(), std::invalid_argument);
  EXPECT_THROW((void)doc.members(), std::invalid_argument);
  try {
    (void)doc.as_string();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("array"), std::string::npos);
  }
}

// --- malformed-input suites ------------------------------------------------

TEST(JsonReader, TruncationAtEveryByteThrows) {
  const std::string doc = kSampleDoc;
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_THROW((void)JsonReader::Parse(doc.substr(0, len)), JsonParseError)
        << "prefix of length " << len << " parsed";
  }
  EXPECT_NO_THROW((void)JsonReader::Parse(doc));
}

TEST(JsonReader, BitFlipAtEveryByteNeverCrashes) {
  const std::string doc = kSampleDoc;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    for (const unsigned mask : {0x01u, 0x80u}) {
      std::string mutated = doc;
      mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^
                                     mask);
      try {
        (void)JsonReader::Parse(mutated);  // may legitimately still parse
      } catch (const JsonParseError&) {
        // equally fine — only UB/crash is a failure
      }
    }
  }
}

TEST(JsonReader, BadEscapesThrow) {
  const std::vector<std::string> bad{
      R"("\x")",            // unknown escape
      R"("\u12")",          // truncated hex
      R"("\u12g4")",        // non-hex digit
      R"("\ud800")",        // lone high surrogate
      R"("\ud800x")",       // high surrogate then garbage
      R"("\ud800\n")",      // high surrogate then wrong escape
      R"("\ud800A")",  // high surrogate then non-surrogate
      R"("\udc00")",        // lone low surrogate
      R"("\)",              // backslash at end of input
      "\"unterminated",     // no closing quote
      "\"ctl\x01\"",        // raw control character
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW((void)JsonReader::Parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonReader, BadUtf8Throws) {
  const std::vector<std::string> bad{
      "\"\xff\"",              // invalid lead byte
      "\"\x80\"",              // continuation as lead
      "\"\xc3\"",              // truncated 2-byte sequence
      "\"\xc3(\"",             // bad continuation
      "\"\xc0\x80\"",          // overlong NUL
      "\"\xe0\x80\x80\"",      // overlong 3-byte
      "\"\xed\xa0\x80\"",      // encoded surrogate U+D800
      "\"\xf0\x80\x80\x80\"",  // overlong 4-byte
      "\"\xf4\x90\x80\x80\"",  // above U+10FFFF
      "\"\xf8\x88\x80\x80\x80\"",  // 5-byte form
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW((void)JsonReader::Parse(doc), JsonParseError) << doc;
  }
  // Valid multi-byte sequences pass through byte-exact.
  EXPECT_EQ(JsonReader::Parse("\"\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80\"")
                .as_string(),
            "\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(JsonReader, BadNumberFormsThrow) {
  const std::vector<std::string> bad{
      "01",      // leading zero
      "-",       // sign alone
      "+1",      // plus sign
      "1.",      // no digits after the point
      ".5",      // no integer part
      "1e",      // empty exponent
      "1e+",     // empty signed exponent
      "0x10",    // hex (trailing garbage after 0)
      "NaN",     // not JSON
      "Infinity",
      "-Infinity",
      "1e999",   // overflows a double
      "-1e999",
      "--1",
      "1..2",
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW((void)JsonReader::Parse(doc), JsonParseError) << doc;
  }
  // Extremes that still fit a double parse fine.
  EXPECT_EQ(JsonReader::Parse("1e308").as_number(), 1e308);
  EXPECT_EQ(JsonReader::Parse("1e-400").as_number(), 0.0);  // underflow -> 0
}

TEST(JsonReader, StructuralErrorsThrow) {
  const std::vector<std::string> bad{
      "",                  // empty input
      "   ",               // whitespace only
      "{",                 // unclosed object
      "}",                 // bare close
      "[1,2",              // unclosed array
      "[1,]",              // trailing comma
      "{\"a\":1,}",        // trailing comma in object
      "{\"a\"}",           // key without value
      "{\"a\":}",          // missing value
      "{a:1}",             // unquoted key
      "{\"a\":1 \"b\":2}", // missing comma
      "[1 2]",             // missing comma
      "{} []",             // trailing content
      "nul",               // truncated literal
      "truex",             // literal then garbage
      R"({"a":1,"a":2})",  // duplicate key
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW((void)JsonReader::Parse(doc), JsonParseError) << doc;
  }
}

TEST(JsonReader, DepthLimitStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  for (int i = 0; i < 2000; ++i) deep += ']';
  EXPECT_THROW((void)JsonReader::Parse(deep), JsonParseError);

  std::string ok = "[[[[[[[[[[42]]]]]]]]]]";
  EXPECT_NO_THROW((void)JsonReader::Parse(ok));

  JsonReader::Limits tight;
  tight.max_depth = 3;
  EXPECT_THROW((void)JsonReader::Parse(ok, tight), JsonParseError);
  EXPECT_NO_THROW((void)JsonReader::Parse("[[1]]", tight));
}

TEST(JsonReader, ByteLimitRejectsOversizedDocuments) {
  JsonReader::Limits limits;
  limits.max_bytes = 8;
  EXPECT_NO_THROW((void)JsonReader::Parse("[1,2]", limits));
  EXPECT_THROW((void)JsonReader::Parse("[1,2,3,4,5]", limits), JsonParseError);
}

TEST(JsonReader, ErrorsCarryTheByteOffset) {
  try {
    (void)JsonReader::Parse("[1,2,\x01]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 5u);
    EXPECT_NE(std::string(e.what()).find("byte 5"), std::string::npos);
  }
}

}  // namespace
}  // namespace custody
