// Tests for the three cluster managers against a scripted mock application:
// standalone's static (random / spreadOut) allocation, Custody's demand-
// driven rounds, and the offer manager's round-robin offers with rejection
// retries.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cluster/custody_manager.h"
#include "cluster/offer_manager.h"
#include "cluster/standalone_manager.h"
#include "sim/simulator.h"

namespace custody::cluster {
namespace {

/// A scripted application: demands are set directly by each test.
class MockApp final : public AppHandle {
 public:
  explicit MockApp(AppId id) : id_(id) {}

  [[nodiscard]] AppId id() const override { return id_; }
  [[nodiscard]] std::vector<core::JobDemand> pending_demand() const override {
    return demand;
  }
  [[nodiscard]] int wanted_executors() const override { return wanted; }
  [[nodiscard]] core::LocalityStats locality() const override {
    return locality_stats;
  }
  void set_share(int s) override { share = s; }
  void on_executor_granted(ExecutorId exec) override {
    granted.push_back(exec);
  }
  bool consider_offer(ExecutorId exec, NodeId node) override {
    offers.emplace_back(exec, node);
    return accept_offers;
  }

  std::vector<core::JobDemand> demand;
  int wanted = 0;
  core::LocalityStats locality_stats;
  int share = -1;
  std::vector<ExecutorId> granted;
  std::vector<std::pair<ExecutorId, NodeId>> offers;
  bool accept_offers = true;

 private:
  AppId id_;
};

// ---------- StandaloneManager ----------------------------------------------

TEST(StandaloneManager, GrantsFairShareAtRegistration) {
  sim::Simulator sim;
  Cluster cluster(10, WorkerConfig{.executors_per_node = 2});
  StandaloneManager manager(sim, cluster, StandaloneConfig{.expected_apps = 4});
  EXPECT_EQ(manager.share(), 5);

  MockApp app(AppId(0));
  manager.register_app(app);
  EXPECT_EQ(app.share, 5);
  EXPECT_EQ(app.granted.size(), 5u);
  EXPECT_EQ(cluster.owned_by(AppId(0)), 5);
}

TEST(StandaloneManager, SpreadOutUsesDistinctNodes) {
  sim::Simulator sim;
  Cluster cluster(10, WorkerConfig{.executors_per_node = 2});
  StandaloneManager manager(
      sim, cluster,
      StandaloneConfig{.expected_apps = 4, .spread_out = true});
  MockApp app(AppId(0));
  manager.register_app(app);
  std::set<NodeId> nodes;
  for (ExecutorId e : app.granted) nodes.insert(cluster.node_of(e));
  EXPECT_EQ(nodes.size(), app.granted.size());  // one per node
}

TEST(StandaloneManager, FourAppsPartitionTheCluster) {
  sim::Simulator sim;
  Cluster cluster(10, WorkerConfig{.executors_per_node = 2});
  StandaloneManager manager(sim, cluster, StandaloneConfig{.expected_apps = 4});
  std::vector<std::unique_ptr<MockApp>> apps;
  for (int a = 0; a < 4; ++a) {
    apps.push_back(std::make_unique<MockApp>(AppId(a)));
    manager.register_app(*apps.back());
  }
  std::set<ExecutorId> all;
  for (const auto& app : apps) {
    EXPECT_EQ(app->granted.size(), 5u);
    for (ExecutorId e : app->granted) {
      EXPECT_TRUE(all.insert(e).second) << "executor granted twice";
    }
  }
}

TEST(StandaloneManager, StaticDespiteDemandChanges) {
  sim::Simulator sim;
  Cluster cluster(4, WorkerConfig{});
  StandaloneManager manager(sim, cluster, StandaloneConfig{.expected_apps = 2});
  MockApp app(AppId(0));
  manager.register_app(app);
  const auto before = app.granted.size();
  app.wanted = 100;
  manager.on_demand_changed(app);
  sim.run();
  EXPECT_EQ(app.granted.size(), before);
}

// ---------- CustodyManager ---------------------------------------------------

struct CustodyFixture {
  sim::Simulator sim;
  Cluster cluster{4, WorkerConfig{.executors_per_node = 1}};
  std::map<BlockId, std::vector<NodeId>> locations;
  CustodyManager manager{
      sim, cluster,
      [this](BlockId b) -> const std::vector<NodeId>& { return locations[b]; },
      CustodyConfig{2, {}}};
};

TEST(CustodyManager, NoExecutorsBeforeDemand) {
  CustodyFixture f;
  MockApp app(AppId(0));
  f.manager.register_app(app);
  f.sim.run();
  EXPECT_TRUE(app.granted.empty());
  EXPECT_EQ(app.share, 2);
}

TEST(CustodyManager, GrantsDataLocalExecutorOnDemand) {
  CustodyFixture f;
  f.locations[BlockId(0)] = {NodeId(2)};
  MockApp app(AppId(0));
  f.manager.register_app(app);
  app.wanted = 1;
  app.demand.push_back({0, 1, {{1, BlockId(0)}}});
  f.manager.on_demand_changed(app);
  f.sim.run();
  ASSERT_EQ(app.granted.size(), 1u);
  EXPECT_EQ(f.cluster.node_of(app.granted[0]), NodeId(2));
}

TEST(CustodyManager, CoalescesSameInstantRounds) {
  CustodyFixture f;
  f.locations[BlockId(0)] = {NodeId(0)};
  MockApp app(AppId(0));
  f.manager.register_app(app);
  app.wanted = 1;
  app.demand.push_back({0, 1, {{1, BlockId(0)}}});
  f.manager.on_demand_changed(app);
  f.manager.on_demand_changed(app);
  f.manager.on_demand_changed(app);
  f.sim.run();
  EXPECT_EQ(app.granted.size(), 1u);
  EXPECT_EQ(f.manager.stats().allocation_rounds, 1u);
}

TEST(CustodyManager, CountsRoundsThatGrantNothing) {
  // Regression: rounds that ran the full allocator but granted nothing
  // were invisible in the stats (the counter sat behind the empty check).
  CustodyFixture f;
  MockApp app(AppId(0));
  f.manager.register_app(app);
  app.wanted = 0;  // demand-capped budget is zero -> no grants possible
  app.demand.push_back({0, 1, {{1, BlockId(0)}}});
  f.manager.on_demand_changed(app);
  f.sim.run();
  EXPECT_TRUE(app.granted.empty());
  EXPECT_EQ(f.manager.stats().allocation_rounds, 1u);
  EXPECT_EQ(f.manager.stats().executors_granted, 0u);
}

TEST(CustodyManager, SkipsRoundWhenNoAppBelowBudget) {
  // Demand-driven trigger: every app already holds its demand-capped budget
  // (here: zero wanted), so the round is counted but the allocator never
  // runs.  A later round with real demand runs normally.
  CustodyFixture f;  // options default: demand_driven on
  f.locations[BlockId(0)] = {NodeId(1)};
  MockApp app(AppId(0));
  f.manager.register_app(app);

  std::vector<AllocationRoundInfo> observed;
  f.manager.set_round_observer(
      [&observed](const AllocationRoundInfo& info) {
        observed.push_back(info);
      });

  app.wanted = 0;  // demand-capped budget is zero -> nothing to grant
  app.demand.push_back({0, 1, {{1, BlockId(0)}}});
  f.manager.on_demand_changed(app);
  f.sim.run();
  EXPECT_TRUE(app.granted.empty());
  EXPECT_EQ(f.manager.stats().allocation_rounds, 1u);
  EXPECT_EQ(f.manager.stats().rounds_skipped, 1u);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_TRUE(observed[0].skipped);
  EXPECT_EQ(observed[0].grants, 0u);
  EXPECT_EQ(observed[0].idle_executors, 4u);

  app.wanted = 1;
  f.manager.on_demand_changed(app);
  f.sim.run();
  EXPECT_EQ(app.granted.size(), 1u);
  EXPECT_EQ(f.manager.stats().allocation_rounds, 2u);
  EXPECT_EQ(f.manager.stats().rounds_skipped, 1u);  // only the first
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_FALSE(observed[1].skipped);
  EXPECT_EQ(observed[1].grants, 1u);
  EXPECT_EQ(observed[1].demand_apps, 1u);
  EXPECT_EQ(observed[1].demanded_tasks, 1u);
  EXPECT_EQ(f.manager.stats().demand_apps, 1u);
  EXPECT_EQ(f.manager.stats().demanded_tasks, 1u);
}

TEST(CustodyManager, ReferencePathNeverSkipsRounds) {
  sim::Simulator sim;
  Cluster cluster(4, WorkerConfig{.executors_per_node = 1});
  std::map<BlockId, std::vector<NodeId>> locations;
  core::AllocatorOptions options;
  options.demand_driven = false;
  CustodyManager manager(
      sim, cluster,
      [&locations](BlockId b) -> const std::vector<NodeId>& {
        return locations[b];
      },
      CustodyConfig{2, options});
  MockApp app(AppId(0));
  manager.register_app(app);
  app.wanted = 0;
  app.demand.push_back({0, 1, {{1, BlockId(0)}}});
  manager.on_demand_changed(app);
  sim.run();
  // The reference path runs the full allocator even for a fruitless round.
  EXPECT_TRUE(app.granted.empty());
  EXPECT_EQ(manager.stats().allocation_rounds, 1u);
  EXPECT_EQ(manager.stats().rounds_skipped, 0u);
  // It also reports the round's true input size: one app with one task,
  // unsatisfiable within a zero budget.
  EXPECT_EQ(manager.stats().demand_apps, 1u);
  EXPECT_EQ(manager.stats().demanded_tasks, 1u);
}

TEST(CustodyManager, RoundInstrumentationAccumulates) {
  CustodyFixture f;
  f.locations[BlockId(0)] = {NodeId(1)};
  MockApp app(AppId(0));
  f.manager.register_app(app);

  std::vector<AllocationRoundInfo> observed;
  f.manager.set_round_observer(
      [&observed](const AllocationRoundInfo& info) {
        observed.push_back(info);
      });

  app.wanted = 1;
  app.demand.push_back({0, 1, {{1, BlockId(0)}}});
  f.manager.on_demand_changed(app);
  f.sim.run();

  const auto& stats = f.manager.stats();
  EXPECT_EQ(stats.allocation_rounds, 1u);
  EXPECT_EQ(stats.executors_granted, 1u);
  EXPECT_GE(stats.allocation_wall_seconds, 0.0);
  EXPECT_GE(stats.allocation_wall_seconds, stats.last_round_wall_seconds);
  EXPECT_GT(stats.executors_scanned, 0u);
  EXPECT_GT(stats.apps_considered, 0u);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].grants, 1u);
  EXPECT_EQ(observed[0].apps, 1u);
  EXPECT_EQ(observed[0].idle_executors, 4u);
  EXPECT_EQ(observed[0].executors_scanned, stats.executors_scanned);
}

TEST(CustodyManager, RejectsDuplicateAppIds) {
  CustodyFixture f;
  MockApp a(AppId(0));
  MockApp b(AppId(0));
  f.manager.register_app(a);
  EXPECT_THROW(f.manager.register_app(b), std::invalid_argument);
}

TEST(CustodyManager, RoutesGrantsAcrossManyApps) {
  // The AppId -> handle map must route every grant to the right app even
  // when registration order and id order disagree.
  sim::Simulator sim;
  Cluster cluster(16, WorkerConfig{.executors_per_node = 1});
  std::map<BlockId, std::vector<NodeId>> locations;
  CustodyManager manager(
      sim, cluster,
      [&locations](BlockId b) -> const std::vector<NodeId>& {
        return locations[b];
      },
      CustodyConfig{8, {}});
  std::vector<std::unique_ptr<MockApp>> apps;
  for (int a = 7; a >= 0; --a) {  // reverse registration order
    apps.push_back(std::make_unique<MockApp>(AppId(a)));
    manager.register_app(*apps.back());
  }
  for (auto& app : apps) {
    app->wanted = 2;
    locations[BlockId(app->id().value())] = {NodeId(app->id().value())};
    app->demand.push_back(
        {app->id().value(), 1, {{app->id().value(), BlockId(app->id().value())}}});
    manager.on_demand_changed(*app);
  }
  sim.run();
  for (auto& app : apps) {
    ASSERT_EQ(app->granted.size(), 2u) << "app " << app->id();
    // The data-local grant lands on the node storing the app's block.
    EXPECT_EQ(cluster.node_of(app->granted[0]), NodeId(app->id().value()));
  }
}

TEST(CustodyManager, DemandCapsBudgetBelowShare) {
  CustodyFixture f;
  MockApp app(AppId(0));
  f.manager.register_app(app);
  app.wanted = 1;  // share is 2, but only one task is runnable
  app.demand.push_back({0, 1, {{1, BlockId(9)}}});  // no locations known
  f.manager.on_demand_changed(app);
  f.sim.run();
  EXPECT_EQ(app.granted.size(), 1u);  // backfill to the demand cap only
}

TEST(CustodyManager, ReleaseTriggersReallocationToOtherApp) {
  CustodyFixture f;
  f.locations[BlockId(0)] = {NodeId(1)};
  MockApp a(AppId(0));
  MockApp b(AppId(1));
  f.manager.register_app(a);
  f.manager.register_app(b);

  a.wanted = 4;
  a.demand.push_back({0, 1, {{1, BlockId(0)}}});
  f.manager.on_demand_changed(a);
  f.sim.run();
  EXPECT_EQ(f.cluster.owned_by(AppId(0)), 2);  // share-capped

  // App 0 finishes: it releases its executors; app 1 now has demand.
  a.wanted = 0;
  a.demand.clear();
  b.wanted = 1;
  b.demand.push_back({1, 1, {{2, BlockId(0)}}});
  f.manager.on_demand_changed(b);
  for (ExecutorId e : a.granted) f.manager.release_executor(e);
  f.sim.run();
  ASSERT_GE(b.granted.size(), 1u);
  EXPECT_EQ(f.cluster.node_of(b.granted[0]), NodeId(1));
}

TEST(CustodyManager, FairnessPrefersLessLocalizedApp) {
  CustodyFixture f;
  f.locations[BlockId(0)] = {NodeId(3)};
  MockApp rich(AppId(0));
  MockApp poor(AppId(1));
  f.manager.register_app(rich);
  f.manager.register_app(poor);
  rich.locality_stats = {10, 10, 100, 100};  // all local so far
  poor.locality_stats = {0, 10, 0, 100};     // nothing local so far
  for (MockApp* app : {&rich, &poor}) {
    app->wanted = 1;
    app->demand.push_back(
        {app->id().value(), 1, {{app->id().value() * 10, BlockId(0)}}});
  }
  f.manager.on_demand_changed(rich);
  f.sim.run();
  // Only one executor sits on node 3; the poor app must get it.
  ASSERT_EQ(poor.granted.size(), 1u);
  EXPECT_EQ(f.cluster.node_of(poor.granted[0]), NodeId(3));
}

TEST(CustodyManager, RequiresLocationsCallback) {
  sim::Simulator sim;
  Cluster cluster(2, WorkerConfig{});
  EXPECT_THROW(CustodyManager(sim, cluster, nullptr, CustodyConfig{}),
               std::invalid_argument);
}

// ---------- OfferManager -----------------------------------------------------

TEST(OfferManager, OffersIdleExecutorsOnDemand) {
  sim::Simulator sim;
  Cluster cluster(2, WorkerConfig{.executors_per_node = 1});
  OfferManager manager(sim, cluster, OfferConfig{.expected_apps = 2});
  MockApp app(AppId(0));
  manager.register_app(app);
  app.wanted = 1;
  manager.on_demand_changed(app);
  EXPECT_FALSE(app.offers.empty());
  EXPECT_EQ(app.granted.size(), 1u);  // accepted the first offer
}

TEST(OfferManager, RejectionCountsAndRetries) {
  sim::Simulator sim;
  Cluster cluster(2, WorkerConfig{.executors_per_node = 1});
  OfferManager manager(sim, cluster,
                       OfferConfig{.expected_apps = 2, .reoffer_interval = 0.5});
  MockApp app(AppId(0));
  app.accept_offers = false;
  manager.register_app(app);
  app.wanted = 1;
  manager.on_demand_changed(app);
  const auto rejected_initially = manager.stats().offers_rejected;
  EXPECT_GT(rejected_initially, 0u);
  // After a retry interval the same executors are offered again; accept now.
  app.accept_offers = true;
  sim.run_until(0.6);
  EXPECT_EQ(app.granted.size(), 1u);
  EXPECT_GT(manager.stats().offers_made, rejected_initially);
}

TEST(OfferManager, RespectsShareCap) {
  sim::Simulator sim;
  Cluster cluster(2, WorkerConfig{.executors_per_node = 2});
  OfferManager manager(sim, cluster, OfferConfig{.expected_apps = 2});
  MockApp app(AppId(0));
  manager.register_app(app);
  app.wanted = 10;
  manager.on_demand_changed(app);
  sim.run();
  EXPECT_EQ(static_cast<int>(app.granted.size()), manager.share());
}

TEST(OfferManager, RoundRobinAcrossApps) {
  sim::Simulator sim;
  Cluster cluster(4, WorkerConfig{.executors_per_node = 1});
  OfferManager manager(sim, cluster, OfferConfig{.expected_apps = 2});
  MockApp a(AppId(0));
  MockApp b(AppId(1));
  manager.register_app(a);
  manager.register_app(b);
  a.wanted = 2;
  b.wanted = 2;
  manager.on_demand_changed(a);
  sim.run();
  EXPECT_EQ(a.granted.size(), 2u);
  EXPECT_EQ(b.granted.size(), 2u);
}

}  // namespace
}  // namespace custody::cluster
