// Tests for the bipartite matching algorithms, including property-based
// comparison against brute force and the greedy 2-approximation guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "common/rng.h"
#include "core/matching.h"

namespace custody::core {
namespace {

/// Exhaustive maximum-weight matching with cardinality bound, for small
/// instances only (reference oracle).
double BruteForceBestWeight(int num_left, int num_right,
                            const std::vector<MatchEdge>& edges,
                            int max_cardinality) {
  double best = 0.0;
  std::vector<bool> used_l(num_left, false);
  std::vector<bool> used_r(num_right, false);
  std::function<void(std::size_t, int, double)> rec =
      [&](std::size_t i, int taken, double weight) {
        best = std::max(best, weight);
        if (i == edges.size() || taken == max_cardinality) return;
        rec(i + 1, taken, weight);
        const MatchEdge& e = edges[i];
        if (!used_l[e.l] && !used_r[e.r]) {
          used_l[e.l] = used_r[e.r] = true;
          rec(i + 1, taken + 1, weight + e.weight);
          used_l[e.l] = used_r[e.r] = false;
        }
      };
  rec(0, 0, 0.0);
  return best;
}

bool MatchingIsConsistent(const MatchingResult& m) {
  int count = 0;
  for (std::size_t l = 0; l < m.match_l.size(); ++l) {
    if (m.match_l[l] < 0) continue;
    ++count;
    if (m.match_r[static_cast<std::size_t>(m.match_l[l])] !=
        static_cast<int>(l)) {
      return false;
    }
  }
  return count == m.cardinality;
}

std::vector<MatchEdge> RandomEdges(Rng& rng, int num_left, int num_right,
                                   double density, bool weighted) {
  std::vector<MatchEdge> edges;
  for (int l = 0; l < num_left; ++l) {
    for (int r = 0; r < num_right; ++r) {
      if (rng.uniform(0.0, 1.0) < density) {
        edges.push_back({l, r, weighted ? rng.uniform(0.1, 5.0) : 1.0});
      }
    }
  }
  return edges;
}

// ---------- Hopcroft–Karp ---------------------------------------------------

TEST(MaxCardinalityMatching, PerfectMatchingOnDiagonal) {
  const std::vector<std::vector<int>> adj{{0}, {1}, {2}};
  const auto m = MaxCardinalityMatching(3, 3, adj);
  EXPECT_EQ(m.cardinality, 3);
  EXPECT_TRUE(MatchingIsConsistent(m));
}

TEST(MaxCardinalityMatching, RequiresAugmentingPath) {
  // Greedy left-to-right would match 0-0 and strand vertex 1; HK augments.
  const std::vector<std::vector<int>> adj{{0, 1}, {0}};
  const auto m = MaxCardinalityMatching(2, 2, adj);
  EXPECT_EQ(m.cardinality, 2);
  EXPECT_EQ(m.match_l[0], 1);
  EXPECT_EQ(m.match_l[1], 0);
}

TEST(MaxCardinalityMatching, EmptyGraph) {
  const auto m = MaxCardinalityMatching(3, 3, {{}, {}, {}});
  EXPECT_EQ(m.cardinality, 0);
}

TEST(MaxCardinalityMatching, PropertyMatchesBruteForce) {
  Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    const int nl = rng.uniform_int(1, 6);
    const int nr = rng.uniform_int(1, 6);
    const auto edges = RandomEdges(rng, nl, nr, 0.4, /*weighted=*/false);
    std::vector<std::vector<int>> adj(nl);
    for (const auto& e : edges) adj[e.l].push_back(e.r);
    const auto m = MaxCardinalityMatching(nl, nr, adj);
    const double best =
        BruteForceBestWeight(nl, nr, edges, std::min(nl, nr));
    EXPECT_TRUE(MatchingIsConsistent(m));
    EXPECT_DOUBLE_EQ(static_cast<double>(m.cardinality), best);
  }
}

// ---------- Greedy weighted -------------------------------------------------

TEST(GreedyWeightedMatching, PicksHeaviestEdgeFirst) {
  const std::vector<MatchEdge> edges{{0, 0, 1.0}, {0, 1, 5.0}, {1, 1, 4.0}};
  const auto m = GreedyWeightedMatching(2, 2, edges);
  // Greedy takes (0,1,5.0) first, then cannot take (1,1); takes nothing
  // else for vertex 1 since only edge (1,1) exists.
  EXPECT_EQ(m.match_l[0], 1);
  EXPECT_EQ(m.match_l[1], -1);
  EXPECT_DOUBLE_EQ(m.total_weight, 5.0);
}

TEST(GreedyWeightedMatching, DeterministicTieBreak) {
  const std::vector<MatchEdge> edges{{1, 1, 2.0}, {0, 0, 2.0}, {0, 1, 2.0}};
  const auto a = GreedyWeightedMatching(2, 2, edges);
  const auto b = GreedyWeightedMatching(2, 2, edges);
  EXPECT_EQ(a.match_l, b.match_l);
  EXPECT_EQ(a.cardinality, 2);  // (0,0) then (1,1)
}

TEST(GreedyWeightedMatching, PropertyTwoApproximation) {
  Rng rng(17);
  for (int trial = 0; trial < 80; ++trial) {
    const int nl = rng.uniform_int(1, 6);
    const int nr = rng.uniform_int(1, 6);
    const auto edges = RandomEdges(rng, nl, nr, 0.5, /*weighted=*/true);
    const auto greedy = GreedyWeightedMatching(nl, nr, edges);
    const double optimal =
        BruteForceBestWeight(nl, nr, edges, std::min(nl, nr));
    EXPECT_TRUE(MatchingIsConsistent(greedy));
    EXPECT_GE(greedy.total_weight, 0.5 * optimal - 1e-9)
        << "greedy broke the 2-approximation bound";
    EXPECT_LE(greedy.total_weight, optimal + 1e-9);
  }
}

// ---------- Exact max-weight with cardinality bound -------------------------

TEST(MaxWeightMatching, MatchesBruteForceUnbounded) {
  Rng rng(19);
  for (int trial = 0; trial < 60; ++trial) {
    const int nl = rng.uniform_int(1, 5);
    const int nr = rng.uniform_int(1, 5);
    const auto edges = RandomEdges(rng, nl, nr, 0.6, /*weighted=*/true);
    const auto exact = MaxWeightMatching(nl, nr, edges, std::min(nl, nr));
    const double best = BruteForceBestWeight(nl, nr, edges, std::min(nl, nr));
    EXPECT_TRUE(MatchingIsConsistent(exact));
    EXPECT_NEAR(exact.total_weight, best, 1e-9);
  }
}

TEST(MaxWeightMatching, RespectsCardinalityBound) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    const int nl = rng.uniform_int(2, 5);
    const int nr = rng.uniform_int(2, 5);
    const int bound = rng.uniform_int(1, 2);
    const auto edges = RandomEdges(rng, nl, nr, 0.7, /*weighted=*/true);
    const auto exact = MaxWeightMatching(nl, nr, edges, bound);
    const double best = BruteForceBestWeight(nl, nr, edges, bound);
    EXPECT_LE(exact.cardinality, bound);
    EXPECT_NEAR(exact.total_weight, best, 1e-9);
  }
}

TEST(MaxWeightMatching, PrefersWeightOverCardinality) {
  // One heavy edge beats two light ones when the bound is 1.
  const std::vector<MatchEdge> edges{{0, 0, 0.4}, {1, 1, 0.5}, {0, 1, 10.0}};
  const auto m = MaxWeightMatching(2, 2, edges, 1);
  EXPECT_EQ(m.cardinality, 1);
  EXPECT_DOUBLE_EQ(m.total_weight, 10.0);
  EXPECT_EQ(m.match_l[0], 1);
}

TEST(MaxWeightMatching, RejectsNegativeWeights) {
  EXPECT_THROW(MaxWeightMatching(1, 1, {{0, 0, -1.0}}, 1),
               std::invalid_argument);
}

TEST(MaxWeightMatching, JobPrioritySemantics) {
  // The paper's intra-app reduction: tasks of a job with µ tasks carry
  // weight 1/µ.  Two jobs compete for one executor (right vertex 0): the
  // smaller job's task (weight 1) must win over the larger job's (1/2).
  const std::vector<MatchEdge> edges{{0, 0, 1.0}, {1, 0, 0.5}};
  const auto m = MaxWeightMatching(2, 1, edges, 1);
  EXPECT_EQ(m.match_r[0], 0);
}

}  // namespace
}  // namespace custody::core
