// Tests for the metrics collector and its figure-level summaries.
#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace custody::metrics {
namespace {

JobRecord Job(AppId app, JobId id, double submit, double input_done,
              double finish, int tasks, int local) {
  JobRecord r;
  r.app = app;
  r.job = id;
  r.submit_time = submit;
  r.input_stage_finish = input_done;
  r.finish_time = finish;
  r.input_tasks = tasks;
  r.local_input_tasks = local;
  return r;
}

TaskRecord Task(bool input, bool local, double ready, double launch,
                double finish) {
  TaskRecord r;
  r.is_input = input;
  r.local = local;
  r.ready_time = ready;
  r.launch_time = launch;
  r.finish_time = finish;
  return r;
}

TEST(JobRecord, DerivedQuantities) {
  const auto r = Job(AppId(0), JobId(0), 10.0, 14.0, 20.0, 4, 3);
  EXPECT_DOUBLE_EQ(r.completion_time(), 10.0);
  EXPECT_DOUBLE_EQ(r.input_stage_duration(), 4.0);
  EXPECT_DOUBLE_EQ(r.locality_percent(), 75.0);
  EXPECT_FALSE(r.perfectly_local());
  EXPECT_TRUE(Job(AppId(0), JobId(1), 0, 1, 2, 4, 4).perfectly_local());
}

TEST(TaskRecord, DerivedQuantities) {
  const auto r = Task(true, true, 1.0, 3.0, 7.0);
  EXPECT_DOUBLE_EQ(r.scheduler_delay(), 2.0);
  EXPECT_DOUBLE_EQ(r.duration(), 4.0);
}

TEST(Metrics, PerJobLocality) {
  MetricsCollector m;
  m.record_job(Job(AppId(0), JobId(0), 0, 1, 2, 4, 4));
  m.record_job(Job(AppId(0), JobId(1), 0, 1, 2, 4, 2));
  const auto locality = m.per_job_locality_percent();
  EXPECT_EQ(locality, (std::vector<double>{100.0, 50.0}));
  EXPECT_DOUBLE_EQ(m.overall_input_locality_percent(), 75.0);
  EXPECT_DOUBLE_EQ(m.local_job_percent(), 50.0);
}

TEST(Metrics, EmptyCollectorIsSafe) {
  MetricsCollector m;
  EXPECT_TRUE(m.per_job_locality_percent().empty());
  EXPECT_DOUBLE_EQ(m.overall_input_locality_percent(), 0.0);
  EXPECT_DOUBLE_EQ(m.local_job_percent(), 0.0);
  EXPECT_DOUBLE_EQ(m.makespan(), 0.0);
}

TEST(Metrics, CompletionAndInputStageSeries) {
  MetricsCollector m;
  m.record_job(Job(AppId(0), JobId(0), 0, 3, 10, 2, 2));
  m.record_job(Job(AppId(1), JobId(1), 5, 9, 25, 2, 2));
  EXPECT_EQ(m.job_completion_times(), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(m.input_stage_durations(), (std::vector<double>{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(m.makespan(), 25.0);
}

TEST(Metrics, SchedulerDelaysOnlyInputTasks) {
  MetricsCollector m;
  m.record_task(Task(true, true, 0.0, 1.0, 2.0));
  m.record_task(Task(false, false, 0.0, 5.0, 6.0));  // downstream: excluded
  m.record_task(Task(true, false, 2.0, 2.5, 9.0));
  const auto delays = m.input_scheduler_delays();
  EXPECT_EQ(delays, (std::vector<double>{1.0, 0.5}));
}

TEST(Metrics, PerAppLocalJobFraction) {
  MetricsCollector m;
  m.record_job(Job(AppId(0), JobId(0), 0, 1, 2, 2, 2));  // local
  m.record_job(Job(AppId(0), JobId(1), 0, 1, 2, 2, 1));  // not local
  m.record_job(Job(AppId(1), JobId(2), 0, 1, 2, 2, 2));  // local
  const auto fractions = m.per_app_local_job_fraction(3);
  ASSERT_EQ(fractions.size(), 3u);
  EXPECT_DOUBLE_EQ(fractions[0], 0.5);
  EXPECT_DOUBLE_EQ(fractions[1], 1.0);
  EXPECT_DOUBLE_EQ(fractions[2], 0.0);  // no jobs -> 0
}

TEST(Metrics, RawRecordsAccessible) {
  MetricsCollector m;
  m.record_task(Task(true, true, 0, 0, 1));
  m.record_job(Job(AppId(0), JobId(0), 0, 1, 2, 1, 1));
  EXPECT_EQ(m.tasks().size(), 1u);
  EXPECT_EQ(m.jobs().size(), 1u);
}

TEST(Metrics, AllocationRoundRecords) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.round_yield_fraction(), 0.0);  // no rounds yet
  m.record_round({/*when=*/1.0, /*wall_seconds=*/2e-4, /*idle_executors=*/8,
                  /*grants=*/4, /*apps_active=*/2, /*executors_scanned=*/40});
  m.record_round({2.0, 1e-4, 4, 0, 2, 12});  // fruitless round
  m.record_round({3.0, 3e-4, 4, 2, 2, 20});

  ASSERT_EQ(m.rounds().size(), 3u);
  EXPECT_EQ(m.round_wall_times(), (std::vector<double>{2e-4, 1e-4, 3e-4}));
  EXPECT_EQ(m.round_grant_counts(), (std::vector<double>{4.0, 0.0, 2.0}));
  EXPECT_EQ(m.total_executors_scanned(), 72u);
  EXPECT_NEAR(m.round_yield_fraction(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace custody::metrics
