// Tests for the metrics collector and its figure-level summaries, in both
// exact-record and constant-memory streaming modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/stats.h"
#include "metrics/metrics.h"

namespace custody::metrics {
namespace {

JobRecord Job(AppId app, JobId id, double submit, double input_done,
              double finish, int tasks, int local) {
  JobRecord r;
  r.app = app;
  r.job = id;
  r.submit_time = submit;
  r.input_stage_finish = input_done;
  r.finish_time = finish;
  r.input_tasks = tasks;
  r.local_input_tasks = local;
  return r;
}

TaskRecord Task(bool input, bool local, double ready, double launch,
                double finish) {
  TaskRecord r;
  r.is_input = input;
  r.local = local;
  r.ready_time = ready;
  r.launch_time = launch;
  r.finish_time = finish;
  return r;
}

TEST(JobRecord, DerivedQuantities) {
  const auto r = Job(AppId(0), JobId(0), 10.0, 14.0, 20.0, 4, 3);
  EXPECT_DOUBLE_EQ(r.completion_time(), 10.0);
  EXPECT_DOUBLE_EQ(r.input_stage_duration(), 4.0);
  EXPECT_DOUBLE_EQ(r.locality_percent(), 75.0);
  EXPECT_FALSE(r.perfectly_local());
  EXPECT_TRUE(Job(AppId(0), JobId(1), 0, 1, 2, 4, 4).perfectly_local());
}

TEST(TaskRecord, DerivedQuantities) {
  const auto r = Task(true, true, 1.0, 3.0, 7.0);
  EXPECT_DOUBLE_EQ(r.scheduler_delay(), 2.0);
  EXPECT_DOUBLE_EQ(r.duration(), 4.0);
}

TEST(Metrics, PerJobLocality) {
  MetricsCollector m;
  m.record_job(Job(AppId(0), JobId(0), 0, 1, 2, 4, 4));
  m.record_job(Job(AppId(0), JobId(1), 0, 1, 2, 4, 2));
  const auto locality = m.per_job_locality_percent();
  EXPECT_EQ(locality, (std::vector<double>{100.0, 50.0}));
  EXPECT_DOUBLE_EQ(m.overall_input_locality_percent(), 75.0);
  EXPECT_DOUBLE_EQ(m.local_job_percent(), 50.0);
}

TEST(Metrics, EmptyCollectorIsSafe) {
  MetricsCollector m;
  EXPECT_TRUE(m.per_job_locality_percent().empty());
  EXPECT_DOUBLE_EQ(m.overall_input_locality_percent(), 0.0);
  EXPECT_DOUBLE_EQ(m.local_job_percent(), 0.0);
  EXPECT_DOUBLE_EQ(m.makespan(), 0.0);
}

TEST(Metrics, CompletionAndInputStageSeries) {
  MetricsCollector m;
  m.record_job(Job(AppId(0), JobId(0), 0, 3, 10, 2, 2));
  m.record_job(Job(AppId(1), JobId(1), 5, 9, 25, 2, 2));
  EXPECT_EQ(m.job_completion_times(), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(m.input_stage_durations(), (std::vector<double>{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(m.makespan(), 25.0);
}

TEST(Metrics, SchedulerDelaysOnlyInputTasks) {
  MetricsCollector m;
  m.record_task(Task(true, true, 0.0, 1.0, 2.0));
  m.record_task(Task(false, false, 0.0, 5.0, 6.0));  // downstream: excluded
  m.record_task(Task(true, false, 2.0, 2.5, 9.0));
  const auto delays = m.input_scheduler_delays();
  EXPECT_EQ(delays, (std::vector<double>{1.0, 0.5}));
}

TEST(Metrics, PerAppLocalJobFraction) {
  MetricsCollector m;
  m.record_job(Job(AppId(0), JobId(0), 0, 1, 2, 2, 2));  // local
  m.record_job(Job(AppId(0), JobId(1), 0, 1, 2, 2, 1));  // not local
  m.record_job(Job(AppId(1), JobId(2), 0, 1, 2, 2, 2));  // local
  const auto fractions = m.per_app_local_job_fraction(3);
  ASSERT_EQ(fractions.size(), 3u);
  EXPECT_DOUBLE_EQ(fractions[0], 0.5);
  EXPECT_DOUBLE_EQ(fractions[1], 1.0);
  EXPECT_DOUBLE_EQ(fractions[2], 0.0);  // no jobs -> 0
}

TEST(Metrics, RawRecordsAccessible) {
  MetricsCollector m;
  m.record_task(Task(true, true, 0, 0, 1));
  m.record_job(Job(AppId(0), JobId(0), 0, 1, 2, 1, 1));
  EXPECT_EQ(m.tasks().size(), 1u);
  EXPECT_EQ(m.jobs().size(), 1u);
}

TEST(Metrics, AllocationRoundRecords) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.round_yield_fraction(), 0.0);  // no rounds yet
  m.record_round({/*when=*/1.0, /*wall_seconds=*/2e-4, /*idle_executors=*/8,
                  /*grants=*/4, /*apps_active=*/2, /*executors_scanned=*/40});
  m.record_round({2.0, 1e-4, 4, 0, 2, 12});  // fruitless round
  m.record_round({3.0, 3e-4, 4, 2, 2, 20});

  ASSERT_EQ(m.rounds().size(), 3u);
  EXPECT_EQ(m.round_wall_times(), (std::vector<double>{2e-4, 1e-4, 3e-4}));
  EXPECT_EQ(m.round_grant_counts(), (std::vector<double>{4.0, 0.0, 2.0}));
  EXPECT_EQ(m.total_executors_scanned(), 72u);
  EXPECT_NEAR(m.round_yield_fraction(), 2.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Streaming mode
// ---------------------------------------------------------------------------

TEST(MetricsStreaming, SummariesMatchExactModeOnTheSameRecords) {
  MetricsCollector exact;
  MetricsCollector streaming;
  streaming.enable_streaming();
  EXPECT_TRUE(streaming.streaming());
  for (int i = 0; i < 200; ++i) {
    const double submit = i * 1.5;
    const auto job = Job(AppId(i % 3), JobId(i), submit, submit + 2.0,
                         submit + 4.0 + (i % 7), 4, i % 5);
    exact.record_job(job);
    streaming.record_job(job);
    const auto task = Task(true, i % 2 == 0, submit, submit + 0.25 * (i % 4),
                           submit + 3.0);
    exact.record_task(task);
    streaming.record_task(task);
  }
  // Raw records stay empty in streaming mode; scalar counters agree exactly.
  EXPECT_TRUE(streaming.jobs().empty());
  EXPECT_TRUE(streaming.tasks().empty());
  EXPECT_EQ(streaming.jobs_recorded(), exact.jobs_recorded());
  EXPECT_EQ(streaming.makespan(), exact.makespan());
  EXPECT_EQ(streaming.overall_input_locality_percent(),
            exact.overall_input_locality_percent());
  EXPECT_EQ(streaming.local_job_percent(), exact.local_job_percent());
  EXPECT_EQ(streaming.per_app_local_job_fraction(3),
            exact.per_app_local_job_fraction(3));

  const Summary e = exact.jct_summary();
  const Summary s = streaming.jct_summary();
  EXPECT_EQ(s.count, e.count);
  EXPECT_NEAR(s.mean, e.mean, 1e-9 * e.mean);
  EXPECT_EQ(s.min, e.min);
  EXPECT_EQ(s.max, e.max);
  EXPECT_NEAR(s.median, e.median, 0.05 * (e.max - e.min));
  const Summary ed = exact.sched_delay_summary();
  const Summary sd = streaming.sched_delay_summary();
  EXPECT_EQ(sd.count, ed.count);
  EXPECT_NEAR(sd.mean, ed.mean, 1e-9 * (ed.mean + 1.0));
}

TEST(MetricsStreaming, EnableAfterRecordsThrows) {
  MetricsCollector m;
  m.record_job(Job(AppId(0), JobId(0), 0, 1, 2, 1, 1));
  EXPECT_THROW(m.enable_streaming(), std::logic_error);
}

TEST(MetricsStreaming, WarmupFiltersIdenticallyInBothModes) {
  MetricsCollector exact;
  MetricsCollector streaming;
  exact.set_warmup(50.0);
  streaming.set_warmup(50.0);
  streaming.enable_streaming();
  for (int i = 0; i < 100; ++i) {
    const auto job =
        Job(AppId(0), JobId(i), /*submit=*/i, i + 1.0, i + 2.0, 2, 2);
    exact.record_job(job);
    streaming.record_job(job);
  }
  // Jobs submitted at t in [50, 99] survive; makespan covers everything.
  EXPECT_EQ(exact.jobs_recorded(), 50u);
  EXPECT_EQ(streaming.jobs_recorded(), 50u);
  EXPECT_EQ(exact.jct_summary().count, 50u);
  EXPECT_EQ(streaming.jct_summary().count, 50u);
  EXPECT_DOUBLE_EQ(exact.makespan(), 101.0);
  EXPECT_DOUBLE_EQ(streaming.makespan(), 101.0);
}

// ---------------------------------------------------------------------------
// 64-bit counter widening (large-horizon overflow regression)
// ---------------------------------------------------------------------------

TEST(Metrics, RoundCountersAccumulatePast32Bits) {
  // A steady-state horizon records enough rounds that the scanned-executor
  // total passes 2^32; the widened counters must not wrap.  Drive the total
  // directly with per-round values near the old int ceiling.
  MetricsCollector m;
  m.enable_streaming();
  const std::uint64_t per_round = std::uint64_t{1} << 31;
  for (int i = 0; i < 4; ++i) {
    AllocationRoundRecord r;
    r.when = static_cast<double>(i);
    r.wall_seconds = 1e-6;
    r.idle_executors = per_round;
    r.grants = per_round;
    r.executors_scanned = per_round;
    r.apps_active = 2;
    m.record_round(r);
  }
  EXPECT_EQ(m.total_executors_scanned(), std::uint64_t{1} << 33);
  EXPECT_EQ(m.total_grants(), std::uint64_t{1} << 33);
  EXPECT_GT(m.total_executors_scanned(),
            std::uint64_t{std::numeric_limits<std::uint32_t>::max()});
}

TEST(Metrics, InputTaskTotalsAccumulatePast32Bits) {
  MetricsCollector m;
  m.enable_streaming();
  // 3 jobs × ~1.43e9 input tasks pushes the task totals past 2^32 without
  // looping billions of times.  Two jobs fully local, one fully remote: the
  // exact 2/3 ratio survives only if neither total wrapped (a 32-bit wrap
  // of the 3-job total leaves ~2 tasks and a nonsense percentage).
  const int tasks_per_job = 1'431'655'766;  // > 2^32 / 3
  m.record_job(Job(AppId(0), JobId(0), 0.0, 1.0, 2.0, tasks_per_job,
                   tasks_per_job));
  m.record_job(Job(AppId(0), JobId(1), 0.0, 1.0, 2.0, tasks_per_job,
                   tasks_per_job));
  m.record_job(Job(AppId(0), JobId(2), 0.0, 1.0, 2.0, tasks_per_job, 0));
  const std::uint64_t total = 3u * static_cast<std::uint64_t>(tasks_per_job);
  EXPECT_GT(total, std::uint64_t{std::numeric_limits<std::uint32_t>::max()});
  EXPECT_DOUBLE_EQ(m.overall_input_locality_percent(), 100.0 * 2.0 / 3.0);
  EXPECT_EQ(m.jobs_recorded(), 3u);
}

}  // namespace
}  // namespace custody::metrics
