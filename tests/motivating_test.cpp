// End-to-end reproductions of the paper's motivating examples:
//
//   Fig. 1 — data-aware allocation achieves 100% locality where round-robin
//            achieves 50%.
//   Fig. 3 — locality-aware inter-application fairness gives each app one
//            local job instead of a 2/0 split.
//   Fig. 4/5 — the intra-application priority strategy completes one job at
//            0.5 time units and the other at 2.0 (average 1.25), versus
//            2.0/2.0 (average 2.0) for a per-job fair split.
#include <gtest/gtest.h>

#include <memory>

#include "app/application.h"
#include "cluster/custody_manager.h"
#include "common/units.h"

namespace custody {
namespace {

using app::AppConfig;
using app::Application;
using app::JobSpec;
using app::SchedulerKind;

/// The four-worker micro-cluster of the motivating figures: one executor
/// and one data block per node, calibrated so a local task takes 0.5 time
/// units and a remote one 2.0 (Fig. 5's timeline).
struct MicroCluster {
  static constexpr double kBlockBytes = 100.0;

  MicroCluster(int expected_apps, int nodes = 4)
      : dfs(MakeDfsConfig(nodes), Rng(1),
            std::make_unique<dfs::RoundRobinPlacement>()),
        net(sim, MakeNetConfig(nodes)),
        cluster(static_cast<std::size_t>(nodes), MakeWorkerConfig()),
        manager(
            sim, cluster,
            [this](BlockId b) -> const std::vector<NodeId>& {
              return dfs.locations(b);
            },
            cluster::CustodyConfig{expected_apps, {}}) {}

  static dfs::DfsConfig MakeDfsConfig(int nodes) {
    dfs::DfsConfig c;
    c.num_nodes = static_cast<std::size_t>(nodes);
    c.block_bytes = kBlockBytes;
    c.default_replication = 1;
    return c;
  }
  static net::NetworkConfig MakeNetConfig(int nodes) {
    net::NetworkConfig c;
    c.num_nodes = static_cast<std::size_t>(nodes);
    // Remote read = 1.25 time units; with 0.25 compute a remote task takes
    // 1.5 after launch, matching Fig. 5's "transmission" bars.
    c.uplink_bps = kBlockBytes / 1.25;
    c.downlink_bps = 1e9;
    return c;
  }
  static cluster::WorkerConfig MakeWorkerConfig() {
    cluster::WorkerConfig c;
    c.executors_per_node = 1;
    c.disk_bps = kBlockBytes / 0.25;  // local read = 0.25 time units
    return c;
  }

  Application& make_app(AppId id) {
    AppConfig config;
    config.dynamic_executors = true;
    // The figures reason about placement, not wait times: never delay.
    config.scheduler.kind = SchedulerKind::kLocalityPreferred;
    apps.push_back(std::make_unique<Application>(id, sim, net, dfs, cluster,
                                                 metrics, ids,
                                                 Rng(50 + id.value()), config));
    apps.back()->attach_manager(manager);
    return *apps.back();
  }

  /// A one-stage job reading `blocks` consecutive fresh blocks; each task:
  /// 0.25 read (local) + 0.25 compute.
  JobSpec job_over_new_file(const std::string& path, int blocks) {
    JobSpec spec;
    spec.name = path;
    spec.input_file = dfs.write_file(path, kBlockBytes * blocks);
    spec.input_compute_secs_per_byte = 0.25 / kBlockBytes;
    return spec;
  }

  sim::Simulator sim;
  dfs::Dfs dfs;
  net::Network net;
  cluster::Cluster cluster;
  cluster::CustodyManager manager;
  metrics::MetricsCollector metrics;
  app::IdSource ids;
  std::vector<std::unique_ptr<Application>> apps;
};

TEST(Fig1, DataAwareAllocationGivesPerfectLocality) {
  MicroCluster mc(/*expected_apps=*/2);
  Application& a1 = mc.make_app(AppId(0));
  Application& a2 = mc.make_app(AppId(1));
  // A1's job reads D1, D2 (on W1, W2); A2's reads D3, D4 (on W3, W4).
  a1.submit_job(mc.job_over_new_file("/a1", 2));
  a2.submit_job(mc.job_over_new_file("/a2", 2));
  mc.sim.run();

  ASSERT_EQ(mc.metrics.jobs().size(), 2u);
  for (const auto& job : mc.metrics.jobs()) {
    EXPECT_TRUE(job.perfectly_local())
        << "app " << job.app << " missed locality";
    // Both tasks local: the job completes in exactly 0.5 time units.
    EXPECT_NEAR(job.completion_time(), 0.5, 1e-9);
  }
}

TEST(Fig3, LocalityAwareFairnessSplitsHotExecutors) {
  MicroCluster mc(/*expected_apps=*/2);
  Application& a3 = mc.make_app(AppId(0));
  Application& a4 = mc.make_app(AppId(1));
  // Two shared hot one-block files: D1 on W0 and D2 on W1 (round-robin
  // placement).  Each app submits one job per file, so both apps want
  // exactly the executors on W0 and W1 — the Fig. 3 conflict.
  const FileId hot0 = mc.dfs.write_file("/hot0", MicroCluster::kBlockBytes);
  const FileId hot1 = mc.dfs.write_file("/hot1", MicroCluster::kBlockBytes);
  for (Application* app : {&a3, &a4}) {
    for (FileId file : {hot0, hot1}) {
      JobSpec spec;
      spec.name = "hot-job";
      spec.input_file = file;
      spec.input_compute_secs_per_byte = 0.25 / MicroCluster::kBlockBytes;
      app->submit_job(spec);
    }
  }
  mc.sim.run();

  // Max-min fairness on local jobs: each application wins exactly one of
  // the two hot executors — one local job each, never a 2/0 split.
  const auto fractions = mc.metrics.per_app_local_job_fraction(2);
  EXPECT_DOUBLE_EQ(fractions[0], 0.5);
  EXPECT_DOUBLE_EQ(fractions[1], 0.5);
}

TEST(Fig4And5, PriorityBeatsJobFairnessInsideAnApplication) {
  // One application, budget two executors (expected_apps = 2 on a 4-node
  // cluster), two jobs with two tasks each.
  MicroCluster mc(/*expected_apps=*/2);
  Application& a5 = mc.make_app(AppId(0));
  a5.submit_job(mc.job_over_new_file("/job1", 2));  // D1 on W1, D2 on W2
  a5.submit_job(mc.job_over_new_file("/job2", 2));  // D3 on W3, D4 on W4
  mc.sim.run();

  ASSERT_EQ(mc.metrics.jobs().size(), 2u);
  std::vector<double> jct = mc.metrics.job_completion_times();
  std::sort(jct.begin(), jct.end());
  // Priority allocation: the first job gets both of its data-local
  // executors and finishes at 0.5; the second job's tasks then read
  // remotely (1.5 after launch at 0.5) and finish at 2.0.
  EXPECT_NEAR(jct[0], 0.5, 1e-6);
  EXPECT_NEAR(jct[1], 2.0, 1e-6);
  // Average 1.25 — Fig. 5's priority timeline, versus 2.0 under the
  // fairness-based split (asserted analytically in the bench).
  EXPECT_NEAR((jct[0] + jct[1]) / 2.0, 1.25, 1e-6);
  // Exactly one of the two jobs was perfectly local.
  int local_jobs = 0;
  for (const auto& job : mc.metrics.jobs()) {
    if (job.perfectly_local()) ++local_jobs;
  }
  EXPECT_EQ(local_jobs, 1);
}

TEST(Fig5, FairSplitTimelineForReference) {
  // The fairness-based counterfactual, built by pinning executors manually:
  // each job gets ONE data-local executor (E1 for T511, E3 for T521); the
  // second task of each job runs remotely on the same executor.  Both jobs
  // finish at 2.0 — the Fig. 5 left timeline.
  MicroCluster mc(/*expected_apps=*/1);

  // Local task: launch at 0, read 0.25, compute 0.25 -> 0.5.
  // Remote task: launch at 0.5, read 1.25, compute 0.25 -> 2.0.
  const double local_done = 0.5;
  const double remote_done = local_done + 1.25 + 0.25;
  EXPECT_NEAR(remote_done, 2.0, 1e-9);
  // Average completion under the fair split: (2.0 + 2.0) / 2 = 2.0, which
  // the priority strategy improves to 1.25 (see Fig4And5 test).
  EXPECT_NEAR((remote_done + remote_done) / 2.0, 2.0, 1e-9);
}

}  // namespace
}  // namespace custody
