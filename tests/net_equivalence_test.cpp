// Equivalence proof for the two network rate paths.
//
// The incremental solver (batched recomputes + persistent incidence +
// heap-based progressive filling) must be *bit-identical* to the reference
// recompute-per-change scan: same rates, same completion order, same
// completion times, same bytes delivered.  These suites drive both paths
// through randomized churn — at the solver level, the Network level and the
// full-experiment level — and compare with exact double equality.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/manager_factory.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "net/maxmin.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/experiment.h"

namespace custody::net {
namespace {

using custody::NodeId;
using custody::Rng;

// ---------- solver vs. reference, direct -----------------------------------

// Random link sets and flow churn (interleaved adds and removes with slot
// reuse); after every mutation batch the persistent solver's rates must be
// bitwise equal to a from-scratch reference pass over the same live set.
TEST(MaxMinFairSolver, BitIdenticalToReferenceUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 7919);
    const std::size_t num_links = static_cast<std::size_t>(rng.uniform_int(2, 12));
    std::vector<double> capacity(num_links);
    for (auto& c : capacity) c = rng.uniform(1.0, 1000.0);

    MaxMinFairSolver solver;
    solver.reset_links(capacity);

    struct LiveFlow {
      std::size_t slot;
      std::vector<std::size_t> links;
    };
    std::vector<LiveFlow> live;       // in add order (slot-stable)
    std::vector<std::size_t> free_slots;
    std::size_t next_slot = 0;
    std::vector<double> rates;

    const int batches = rng.uniform_int(5, 15);
    for (int batch = 0; batch < batches; ++batch) {
      // Remove a random subset.
      for (std::size_t i = live.size(); i-- > 0;) {
        if (live.size() > 0 && rng.uniform(0.0, 1.0) < 0.3) {
          solver.remove_flow(live[i].slot);
          free_slots.push_back(live[i].slot);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      // Add a few new flows, reusing slots like the Network does.
      const int adds = rng.uniform_int(1, 8);
      for (int a = 0; a < adds; ++a) {
        std::size_t slot;
        if (!free_slots.empty()) {
          slot = free_slots.back();
          free_slots.pop_back();
        } else {
          slot = next_slot++;
        }
        std::vector<std::size_t> links;
        const int degree = rng.uniform_int(0, 3);
        for (int d = 0; d < degree; ++d) {
          const std::size_t l = rng.index(num_links);
          if (std::find(links.begin(), links.end(), l) == links.end()) {
            links.push_back(l);
          }
        }
        solver.add_flow(slot, links.data(), links.size());
        live.push_back({slot, links});
      }

      solver.solve(rates);

      // Reference over the same live set.  Flow order is irrelevant to the
      // result (the per-link subtractions commute bitwise), but use add
      // order anyway, mirroring the Network's insertion-order walk.
      std::vector<std::vector<std::size_t>> ref_links;
      ref_links.reserve(live.size());
      for (const auto& f : live) ref_links.push_back(f.links);
      const std::vector<double> ref = MaxMinFairRates(ref_links, capacity);

      ASSERT_EQ(ref.size(), live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        const double got = rates[live[i].slot];
        const double want = ref[i];
        if (std::isinf(want)) {
          EXPECT_TRUE(std::isinf(got)) << "seed " << seed << " batch " << batch;
        } else {
          EXPECT_EQ(got, want)  // bitwise: no tolerance
              << "seed " << seed << " batch " << batch << " flow " << i;
        }
      }
    }
  }
}

// Counters must reflect the asymptotic win.  Both paths pay O(L) once per
// solve, but the reference additionally rescans every flow and every link
// per bottleneck round; the heap path only touches entries incident to the
// round's bottleneck.  With F flows on F *distinct* bottlenecks (worst case
// for the scan: F rounds) the reference does ~F x (F + 2L) work while the
// heap path stays ~O(F + L).
TEST(MaxMinFairSolver, CountersShowSubLinearPerRoundWork) {
  const std::size_t n = 100;  // nodes -> 200 links
  std::vector<double> capacity(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    capacity[i] = 10.0 + static_cast<double>(i);  // distinct uplink shares
    capacity[n + i] = 1e9;
  }
  MaxMinFairSolver solver;
  solver.reset_links(capacity);
  std::vector<std::vector<std::size_t>> flow_links;
  for (std::size_t f = 0; f < n; ++f) {
    const std::size_t links[2] = {f, n + f};
    solver.add_flow(f, links, 2);
    flow_links.push_back({f, n + f});
  }
  std::vector<double> rates;
  SolveCounters inc;
  solver.solve(rates, &inc);
  SolveCounters ref;
  const auto ref_rates = MaxMinFairRates(flow_links, capacity, &ref);
  for (std::size_t f = 0; f < n; ++f) EXPECT_EQ(rates[f], ref_rates[f]);

  // Every flow is its own bottleneck: F rounds on both paths.
  EXPECT_EQ(ref.rounds, n);
  EXPECT_EQ(inc.rounds, n);
  // Reference: per-round full rescans.  Heap: one init pass + one pop per
  // round, no rescans — over an order of magnitude fewer link inspections.
  EXPECT_EQ(ref.links_scanned, ref.rounds * 2 * n);
  EXPECT_EQ(ref.flows_scanned, ref.rounds * n);
  EXPECT_LE(inc.links_scanned, 2 * n + 2 * inc.rounds);
  EXPECT_EQ(inc.flows_scanned, n);
  EXPECT_LT(inc.links_scanned * 10, ref.links_scanned);
}

// ---------- solver vs. reference, partitioned -------------------------------

// The partitioned solver under the same randomized churn: rates must stay
// bitwise equal to the from-scratch reference, AND the SolveDelta must be
// complete — a shadow rate table updated *only* from reported deltas has to
// agree with the reference too, which catches both a changed-but-unreported
// slot (stale shadow) and a clean component being needlessly re-solved
// (checked via the dirty counter).
TEST(MaxMinFairSolver, PartitionedBitIdenticalWithCompleteDeltas) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 104729);
    const std::size_t num_links =
        static_cast<std::size_t>(rng.uniform_int(2, 12));
    std::vector<double> capacity(num_links);
    for (auto& c : capacity) c = rng.uniform(1.0, 1000.0);

    MaxMinFairSolver solver;
    solver.reset_links(capacity, /*partitioned=*/true);

    struct LiveFlow {
      std::size_t slot;
      std::vector<std::size_t> links;
    };
    std::vector<LiveFlow> live;
    std::vector<std::size_t> free_slots;
    std::size_t next_slot = 0;
    std::vector<double> rates;
    std::vector<double> shadow;  // written only from SolveDelta entries
    SolveCounters counters;
    SolveDelta delta;

    const int batches = rng.uniform_int(5, 15);
    for (int batch = 0; batch < batches; ++batch) {
      for (std::size_t i = live.size(); i-- > 0;) {
        if (live.size() > 0 && rng.uniform(0.0, 1.0) < 0.3) {
          solver.remove_flow(live[i].slot);
          free_slots.push_back(live[i].slot);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      const int adds = rng.uniform_int(1, 8);
      for (int a = 0; a < adds; ++a) {
        std::size_t slot;
        if (!free_slots.empty()) {
          slot = free_slots.back();
          free_slots.pop_back();
        } else {
          slot = next_slot++;
        }
        std::vector<std::size_t> links;
        const int degree = rng.uniform_int(0, 3);
        for (int d = 0; d < degree; ++d) {
          const std::size_t l = rng.index(num_links);
          if (std::find(links.begin(), links.end(), l) == links.end()) {
            links.push_back(l);
          }
        }
        solver.add_flow(slot, links.data(), links.size());
        live.push_back({slot, links});
      }

      solver.solve(rates, &counters, &delta);

      // Delta framing: one end offset per fresh component, monotone, the
      // last covering every changed slot.
      ASSERT_EQ(delta.component_ends.size(), delta.fresh_components.size());
      std::uint32_t prev_end = 0;
      for (const std::uint32_t end : delta.component_ends) {
        ASSERT_GE(end, prev_end);
        prev_end = end;
      }
      ASSERT_EQ(prev_end, delta.changed_slots.size());

      if (shadow.size() < rates.size()) shadow.resize(rates.size(), -1.0);
      for (const std::uint32_t slot : delta.changed_slots) {
        shadow[slot] = rates[slot];
      }
      for (const std::uint32_t slot : delta.unconstrained_slots) {
        shadow[slot] = rates[slot];
      }

      std::vector<std::vector<std::size_t>> ref_links;
      ref_links.reserve(live.size());
      for (const auto& f : live) ref_links.push_back(f.links);
      const std::vector<double> ref = MaxMinFairRates(ref_links, capacity);

      ASSERT_EQ(ref.size(), live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        const std::size_t slot = live[i].slot;
        EXPECT_EQ(rates[slot], ref[i])
            << "seed " << seed << " batch " << batch << " flow " << i;
        EXPECT_EQ(shadow[slot], ref[i])
            << "delta missed a changed slot: seed " << seed << " batch "
            << batch << " flow " << i;
        // Zero-degree flows own no links and no component.
        EXPECT_EQ(solver.component_of_slot(slot) == MaxMinFairSolver::kNoComponent,
                  live[i].links.empty())
            << "seed " << seed << " batch " << batch << " flow " << i;
      }
      // Flows sharing a link must share a component.
      for (const auto& a : live) {
        for (const auto& b : live) {
          for (const std::size_t la : a.links) {
            if (std::find(b.links.begin(), b.links.end(), la) !=
                b.links.end()) {
              EXPECT_EQ(solver.component_of_slot(a.slot),
                        solver.component_of_slot(b.slot))
                  << "seed " << seed << " batch " << batch;
            }
          }
        }
      }
    }
    // Across the run, at least as many components existed as were dirty.
    EXPECT_GE(counters.components_total, counters.components_dirty);
  }
}

// A zero-capacity link freezes its flows at rate 0 on both paths; the link
// is still connectivity (it can merge components) even though it carries no
// bandwidth.
TEST(MaxMinFairSolver, ZeroCapacityLinkBitIdentical) {
  const std::vector<double> capacity = {0.0, 100.0, 50.0};
  MaxMinFairSolver solver;
  solver.reset_links(capacity, /*partitioned=*/true);
  const std::size_t f0[2] = {0, 1};  // through the dead link
  const std::size_t f1[2] = {1, 2};
  solver.add_flow(0, f0, 2);
  solver.add_flow(1, f1, 2);
  std::vector<double> rates;
  SolveCounters counters;
  SolveDelta delta;
  solver.solve(rates, &counters, &delta);

  const std::vector<double> ref =
      MaxMinFairRates({{0, 1}, {1, 2}}, capacity);
  EXPECT_EQ(rates[0], ref[0]);
  EXPECT_EQ(rates[1], ref[1]);
  EXPECT_EQ(rates[0], 0.0);  // bottlenecked by the dead link
  EXPECT_GT(rates[1], 0.0);
  // Link 1 is shared, so both flows live in one component.
  EXPECT_EQ(solver.live_component_count(), 1u);
  EXPECT_EQ(solver.component_of_slot(0), solver.component_of_slot(1));
}

// Slot reuse across solves: the partition must track the slot's *new* links,
// not remember the old ones.  The emptied component retires; the reused slot
// joins (and merges into) whatever its new links touch.
TEST(MaxMinFairSolver, SlotReuseAcrossSolvesRepartitionsExactly) {
  const std::vector<double> capacity = {10.0, 20.0, 30.0, 40.0};
  MaxMinFairSolver solver;
  solver.reset_links(capacity, /*partitioned=*/true);
  const std::size_t f0[2] = {0, 1};
  const std::size_t f1[2] = {2, 3};
  solver.add_flow(0, f0, 2);
  solver.add_flow(1, f1, 2);
  std::vector<double> rates;
  SolveCounters counters;
  SolveDelta delta;
  solver.solve(rates, &counters, &delta);
  EXPECT_EQ(solver.live_component_count(), 2u);

  // Retire flow 0; its component (links 0, 1) dissolves at the next solve.
  solver.remove_flow(0);
  solver.solve(rates, &counters, &delta);
  EXPECT_EQ(solver.live_component_count(), 1u);

  // Reuse slot 0 with different links: one unowned (1), one owned (2).
  const std::size_t reused[2] = {1, 2};
  solver.add_flow(0, reused, 2);
  solver.solve(rates, &counters, &delta);
  EXPECT_EQ(solver.live_component_count(), 1u);
  EXPECT_EQ(solver.component_of_slot(0), solver.component_of_slot(1));

  const std::vector<double> ref =
      MaxMinFairRates({{1, 2}, {2, 3}}, capacity);
  EXPECT_EQ(rates[0], ref[0]);
  EXPECT_EQ(rates[1], ref[1]);
}

// A kMaxLinksPerFlow-degree flow landing across three separate components
// must merge all three: two ids retire by the merge, the third by the
// rebuild, and a single fresh component covers every affected slot.
TEST(MaxMinFairSolver, MaxDegreeFlowMergesThreeComponents) {
  static_assert(MaxMinFairSolver::kMaxLinksPerFlow == 3);
  const std::vector<double> capacity = {10.0, 20.0, 30.0, 40.0, 50.0, 60.0};
  MaxMinFairSolver solver;
  solver.reset_links(capacity, /*partitioned=*/true);
  const std::size_t f0[2] = {0, 1};
  const std::size_t f1[2] = {2, 3};
  const std::size_t f2[2] = {4, 5};
  solver.add_flow(0, f0, 2);
  solver.add_flow(1, f1, 2);
  solver.add_flow(2, f2, 2);
  std::vector<double> rates;
  SolveCounters counters;
  SolveDelta delta;
  solver.solve(rates, &counters, &delta);
  EXPECT_EQ(solver.live_component_count(), 3u);
  EXPECT_EQ(delta.fresh_components.size(), 3u);

  const std::size_t bridge[3] = {1, 3, 5};  // one link from each component
  solver.add_flow(3, bridge, 3);
  const SolveCounters before = counters;
  solver.solve(rates, &counters, &delta);
  EXPECT_EQ(solver.live_component_count(), 1u);
  // Two components merged away + the merge target rebuilt = 3 retirements,
  // one fresh component containing every flow.
  EXPECT_EQ(delta.retired_components.size(), 3u);
  ASSERT_EQ(delta.fresh_components.size(), 1u);
  EXPECT_EQ(delta.changed_slots.size(), 4u);
  EXPECT_EQ(counters.components_dirty - before.components_dirty, 1u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(solver.component_of_slot(s), delta.fresh_components[0]);
  }

  const std::vector<double> ref = MaxMinFairRates(
      {{0, 1}, {2, 3}, {4, 5}, {1, 3, 5}}, capacity);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(rates[s], ref[s]);
}

// Restore-then-churn on the partition: a solver restored from a snapshot
// rebuilds its partition from the incidence lists, and further churn on the
// restored instance must stay bitwise identical to the original instance
// seeing the same churn.
TEST(MaxMinFairSolver, RestoreThenChurnMatchesOriginal) {
  Rng rng(424242);
  const std::size_t num_links = 10;
  std::vector<double> capacity(num_links);
  for (auto& c : capacity) c = rng.uniform(1.0, 500.0);

  MaxMinFairSolver original;
  original.reset_links(capacity, /*partitioned=*/true);
  std::vector<std::vector<std::size_t>> live_links(32);
  for (std::size_t slot = 0; slot < 32; ++slot) {
    std::vector<std::size_t> links;
    const int degree = rng.uniform_int(1, 3);
    for (int d = 0; d < degree; ++d) {
      const std::size_t l = rng.index(num_links);
      if (std::find(links.begin(), links.end(), l) == links.end()) {
        links.push_back(l);
      }
    }
    original.add_flow(slot, links.data(), links.size());
    live_links[slot] = links;
  }
  std::vector<double> orig_rates;
  SolveCounters counters;
  SolveDelta delta;
  original.solve(orig_rates, &counters, &delta);

  // Snapshot the flushed solver and restore into a fresh instance.  Rates
  // live with the caller (the Network serializes them itself), so carry
  // them over by copy, exactly like Network::RestoreFrom does.
  snap::SnapshotWriter w;
  original.SaveTo(w);
  snap::SnapshotReader r(w.finish(/*config_hash=*/0, /*sim_time=*/0.0));
  MaxMinFairSolver restored;
  restored.reset_links(capacity, /*partitioned=*/true);
  restored.RestoreFrom(r);
  std::vector<double> rest_rates = orig_rates;

  EXPECT_EQ(restored.flow_count(), original.flow_count());
  EXPECT_EQ(restored.live_component_count(), original.live_component_count());

  // Identical churn on both instances: remove some, add some, re-solve.
  SolveDelta rest_delta;
  for (int batch = 0; batch < 4; ++batch) {
    for (std::size_t slot = 0; slot < live_links.size(); ++slot) {
      if (!live_links[slot].empty() && rng.uniform(0.0, 1.0) < 0.25) {
        original.remove_flow(slot);
        restored.remove_flow(slot);
        live_links[slot].clear();
      }
    }
    for (int a = 0; a < 5; ++a) {
      const std::size_t slot = rng.index(live_links.size());
      if (!live_links[slot].empty()) continue;  // only reuse free slots
      std::vector<std::size_t> links;
      const int degree = rng.uniform_int(1, 3);
      for (int d = 0; d < degree; ++d) {
        const std::size_t l = rng.index(num_links);
        if (std::find(links.begin(), links.end(), l) == links.end()) {
          links.push_back(l);
        }
      }
      original.add_flow(slot, links.data(), links.size());
      restored.add_flow(slot, links.data(), links.size());
      live_links[slot] = links;
    }
    original.solve(orig_rates, &counters, &delta);
    restored.solve(rest_rates, &counters, &rest_delta);
    EXPECT_EQ(restored.live_component_count(),
              original.live_component_count())
        << "batch " << batch;
    for (std::size_t slot = 0; slot < live_links.size(); ++slot) {
      if (live_links[slot].empty()) continue;
      EXPECT_EQ(rest_rates[slot], orig_rates[slot])
          << "batch " << batch << " slot " << slot;
    }
  }
}

// ---------- Network level: randomized churn scenarios -----------------------

struct ScenarioResult {
  std::vector<int> completion_order;       // flow label, callback order
  std::vector<double> completion_times;    // one per completion, same order
  std::vector<double> rate_samples;        // flow_rate probes
  double bytes_delivered = 0.0;
  std::uint64_t events = 0;
};

/// Replays one randomized churn scenario (same-timestamp bursts, staggered
/// starts, scheduled cancels, completion-driven restarts) on either path.
ScenarioResult RunScenario(std::uint64_t seed, bool incremental,
                           bool partitioned) {
  Rng rng(seed);
  const std::size_t nodes = static_cast<std::size_t>(rng.uniform_int(4, 12));
  NetworkConfig config;
  config.num_nodes = nodes;
  config.uplink_bps = rng.uniform(50.0, 400.0);
  config.downlink_bps = rng.uniform(100.0, 800.0);
  config.core_bps = rng.uniform(0.0, 1.0) < 0.3
                        ? rng.uniform(100.0, 1000.0)
                        : 0.0;
  config.incremental = incremental;
  config.component_partitioned = partitioned;

  sim::Simulator sim;
  Network net(sim, config);
  ScenarioResult out;
  std::vector<FlowId> started;

  auto pick_pair = [&rng, nodes](NodeId& src, NodeId& dst) {
    const auto s = static_cast<NodeId::value_type>(rng.index(nodes));
    auto d = static_cast<NodeId::value_type>(rng.index(nodes));
    if (d == s) d = static_cast<NodeId::value_type>((d + 1) % nodes);
    src = NodeId(s);
    dst = NodeId(d);
  };

  int label = 0;
  const int bursts = rng.uniform_int(3, 8);
  double t = 0.0;
  for (int b = 0; b < bursts; ++b) {
    t += rng.uniform(0.0, 5.0);  // occasionally zero: coincident bursts
    const int burst_flows = rng.uniform_int(1, 6);
    for (int f = 0; f < burst_flows; ++f) {
      const int this_label = label++;
      const double bytes = rng.uniform(100.0, 5000.0);
      const bool chain = rng.uniform(0.0, 1.0) < 0.25;
      sim.schedule_at(t, [&, this_label, bytes, chain] {
        NodeId src, dst;
        pick_pair(src, dst);
        const int chained_label = chain ? 10000 + this_label : -1;
        started.push_back(net.start_flow(src, dst, bytes, [&, this_label,
                                                           chained_label] {
          out.completion_order.push_back(this_label);
          out.completion_times.push_back(sim.now());
          if (chained_label >= 0) {
            // Restart from inside the completion callback (re-entrancy).
            NodeId s2, d2;
            pick_pair(s2, d2);
            net.start_flow(s2, d2, 250.0, [&, chained_label] {
              out.completion_order.push_back(chained_label);
              out.completion_times.push_back(sim.now());
            });
          }
        }));
      });
    }
    // Probe rates mid-run (forces a flush on the incremental path) and
    // cancel a random earlier flow.
    const double probe_t = t + rng.uniform(0.1, 3.0);
    const std::size_t cancel_ix = rng.index(64);
    sim.schedule_at(probe_t, [&, cancel_ix] {
      for (const FlowId id : started) {
        out.rate_samples.push_back(net.flow_rate(id));
      }
      if (!started.empty()) {
        net.cancel_flow(started[cancel_ix % started.size()]);
      }
    });
  }
  sim.run();
  out.bytes_delivered = net.bytes_delivered();
  out.events = sim.events_processed();
  return out;
}

// The acceptance property: >= 40 seeds of random flow churn, identical
// rates, completion order, completion times and bytes_delivered — exact
// double equality, no tolerance.
TEST(NetworkEquivalence, IncrementalMatchesReferenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const ScenarioResult inc = RunScenario(seed, true, true);
    const ScenarioResult ref = RunScenario(seed, false, false);
    ASSERT_EQ(inc.completion_order, ref.completion_order) << "seed " << seed;
    ASSERT_EQ(inc.completion_times.size(), ref.completion_times.size());
    for (std::size_t i = 0; i < inc.completion_times.size(); ++i) {
      EXPECT_EQ(inc.completion_times[i], ref.completion_times[i])
          << "seed " << seed << " completion " << i;
    }
    ASSERT_EQ(inc.rate_samples.size(), ref.rate_samples.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < inc.rate_samples.size(); ++i) {
      EXPECT_EQ(inc.rate_samples[i], ref.rate_samples[i])
          << "seed " << seed << " sample " << i;
    }
    EXPECT_EQ(inc.bytes_delivered, ref.bytes_delivered) << "seed " << seed;
  }
}

// Partitioned vs. unpartitioned on the *same* incremental path: identical
// batching means the entire event stream must match, so this comparison
// includes the processed-event count on top of the usual figures.
TEST(NetworkEquivalence, PartitionToggleInvariantAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const ScenarioResult part = RunScenario(seed, true, true);
    const ScenarioResult flat = RunScenario(seed, true, false);
    ASSERT_EQ(part.completion_order, flat.completion_order) << "seed " << seed;
    ASSERT_EQ(part.completion_times.size(), flat.completion_times.size());
    for (std::size_t i = 0; i < part.completion_times.size(); ++i) {
      EXPECT_EQ(part.completion_times[i], flat.completion_times[i])
          << "seed " << seed << " completion " << i;
    }
    ASSERT_EQ(part.rate_samples.size(), flat.rate_samples.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < part.rate_samples.size(); ++i) {
      EXPECT_EQ(part.rate_samples[i], flat.rate_samples[i])
          << "seed " << seed << " sample " << i;
    }
    EXPECT_EQ(part.bytes_delivered, flat.bytes_delivered) << "seed " << seed;
    EXPECT_EQ(part.events, flat.events) << "seed " << seed;
  }
}

// Batching must actually batch: on the incremental path strictly fewer
// solves run than were requested whenever bursts exist.
TEST(NetworkEquivalence, IncrementalPathBatchesRecomputes) {
  sim::Simulator sim;
  NetworkConfig config;
  config.num_nodes = 8;
  config.uplink_bps = 100.0;
  config.downlink_bps = 200.0;
  Network net(sim, config);
  sim.schedule_at(1.0, [&] {
    for (int i = 0; i < 7; ++i) {
      net.start_flow(NodeId(0), NodeId(static_cast<NodeId::value_type>(i + 1)),
                     700.0, [] {});
    }
  });
  sim.run();
  const NetStats& s = net.stats();
  EXPECT_GT(s.recomputes_requested, s.recomputes_run);
  EXPECT_EQ(s.recomputes_batched(), s.recomputes_requested - s.recomputes_run);
  EXPECT_GT(s.wall_seconds, 0.0);
}

// ---------- experiment level ------------------------------------------------

// A full experiment (apps, shuffle fan-out, DFS reads, manager rounds) must
// report identical figures on both rate paths.
TEST(NetworkEquivalence, ExperimentResultsIdenticalAcrossRatePaths) {
  namespace wl = custody::workload;
  wl::ExperimentConfig config;
  config.num_nodes = 12;
  config.kinds = {wl::WorkloadKind::kSort};  // shuffle-heavy: network matters
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 3;
  config.trace.files_per_kind = 4;
  config.seed = 1234;

  config.incremental_network = true;
  const wl::ExperimentResult inc = wl::RunExperiment(config);
  config.incremental_network = false;
  config.component_partitioned_network = false;
  const wl::ExperimentResult ref = wl::RunExperiment(config);

  EXPECT_EQ(inc.makespan, ref.makespan);
  EXPECT_EQ(inc.jobs_completed, ref.jobs_completed);
  EXPECT_EQ(inc.jct.mean, ref.jct.mean);
  EXPECT_EQ(inc.jct.stddev, ref.jct.stddev);
  EXPECT_EQ(inc.input_stage.mean, ref.input_stage.mean);
  EXPECT_EQ(inc.net_bytes_delivered, ref.net_bytes_delivered);
  EXPECT_EQ(inc.overall_task_locality_percent,
            ref.overall_task_locality_percent);
  // Same flow-set changes on both paths; only the executed-solve count may
  // differ (batching).
  EXPECT_EQ(inc.net_stats.recomputes_requested,
            ref.net_stats.recomputes_requested);
  EXPECT_LT(inc.net_stats.recomputes_run, ref.net_stats.recomputes_run);
  EXPECT_EQ(ref.net_stats.recomputes_batched, 0u);
  EXPECT_GT(inc.net_stats.recomputes_batched, 0u);
}

// The acceptance sweep for the component partition: 20 seeds x all four
// managers, component_partitioned on vs. off, exact double compare on every
// reported figure INCLUDING events_processed (same batching + same
// completion times => the simulators walk identical event sequences).
TEST(NetworkEquivalence, PartitionToggleInvariantAcrossManagersAndSeeds) {
  namespace wl = custody::workload;
  using custody::cluster::ManagerKind;
  const ManagerKind kManagers[] = {ManagerKind::kStandalone,
                                   ManagerKind::kCustody, ManagerKind::kOffer,
                                   ManagerKind::kPool};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    for (const ManagerKind manager : kManagers) {
      wl::ExperimentConfig config;
      config.num_nodes = 10;
      config.manager = manager;
      config.kinds = {wl::WorkloadKind::kSort};  // shuffle-heavy
      config.trace.num_apps = 2;
      config.trace.jobs_per_app = 2;
      config.trace.files_per_kind = 3;
      config.seed = 5000 + seed;

      config.component_partitioned_network = true;
      const wl::ExperimentResult part = wl::RunExperiment(config);
      config.component_partitioned_network = false;
      const wl::ExperimentResult flat = wl::RunExperiment(config);

      const std::string at = "seed " + std::to_string(config.seed) +
                             " manager " + part.manager_name;
      EXPECT_EQ(part.makespan, flat.makespan) << at;
      EXPECT_EQ(part.jobs_completed, flat.jobs_completed) << at;
      EXPECT_EQ(part.jct.mean, flat.jct.mean) << at;
      EXPECT_EQ(part.jct.stddev, flat.jct.stddev) << at;
      EXPECT_EQ(part.net_bytes_delivered, flat.net_bytes_delivered) << at;
      EXPECT_EQ(part.events_processed, flat.events_processed) << at;
      // Identical flow churn and identical batching on both sides; only the
      // per-solve work differs.
      EXPECT_EQ(part.net_stats.recomputes_requested,
                flat.net_stats.recomputes_requested)
          << at;
      EXPECT_EQ(part.net_stats.recomputes_run, flat.net_stats.recomputes_run)
          << at;
      // The partitioned side must actually report partition work, and must
      // rewrite no more rates than the full-rewrite path.
      EXPECT_GT(part.net_stats.components_total, 0u) << at;
      EXPECT_EQ(flat.net_stats.components_total, 0u) << at;
      EXPECT_LE(part.net_stats.rates_changed, flat.net_stats.rates_changed)
          << at;
    }
  }
}

}  // namespace
}  // namespace custody::net
