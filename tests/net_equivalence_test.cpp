// Equivalence proof for the two network rate paths.
//
// The incremental solver (batched recomputes + persistent incidence +
// heap-based progressive filling) must be *bit-identical* to the reference
// recompute-per-change scan: same rates, same completion order, same
// completion times, same bytes delivered.  These suites drive both paths
// through randomized churn — at the solver level, the Network level and the
// full-experiment level — and compare with exact double equality.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/maxmin.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workload/experiment.h"

namespace custody::net {
namespace {

using custody::NodeId;
using custody::Rng;

// ---------- solver vs. reference, direct -----------------------------------

// Random link sets and flow churn (interleaved adds and removes with slot
// reuse); after every mutation batch the persistent solver's rates must be
// bitwise equal to a from-scratch reference pass over the same live set.
TEST(MaxMinFairSolver, BitIdenticalToReferenceUnderChurn) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed * 7919);
    const std::size_t num_links = static_cast<std::size_t>(rng.uniform_int(2, 12));
    std::vector<double> capacity(num_links);
    for (auto& c : capacity) c = rng.uniform(1.0, 1000.0);

    MaxMinFairSolver solver;
    solver.reset_links(capacity);

    struct LiveFlow {
      std::size_t slot;
      std::vector<std::size_t> links;
    };
    std::vector<LiveFlow> live;       // in add order (slot-stable)
    std::vector<std::size_t> free_slots;
    std::size_t next_slot = 0;
    std::vector<double> rates;

    const int batches = rng.uniform_int(5, 15);
    for (int batch = 0; batch < batches; ++batch) {
      // Remove a random subset.
      for (std::size_t i = live.size(); i-- > 0;) {
        if (live.size() > 0 && rng.uniform(0.0, 1.0) < 0.3) {
          solver.remove_flow(live[i].slot);
          free_slots.push_back(live[i].slot);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      // Add a few new flows, reusing slots like the Network does.
      const int adds = rng.uniform_int(1, 8);
      for (int a = 0; a < adds; ++a) {
        std::size_t slot;
        if (!free_slots.empty()) {
          slot = free_slots.back();
          free_slots.pop_back();
        } else {
          slot = next_slot++;
        }
        std::vector<std::size_t> links;
        const int degree = rng.uniform_int(0, 3);
        for (int d = 0; d < degree; ++d) {
          const std::size_t l = rng.index(num_links);
          if (std::find(links.begin(), links.end(), l) == links.end()) {
            links.push_back(l);
          }
        }
        solver.add_flow(slot, links.data(), links.size());
        live.push_back({slot, links});
      }

      solver.solve(rates);

      // Reference over the same live set.  Flow order is irrelevant to the
      // result (the per-link subtractions commute bitwise), but use add
      // order anyway, mirroring the Network's insertion-order walk.
      std::vector<std::vector<std::size_t>> ref_links;
      ref_links.reserve(live.size());
      for (const auto& f : live) ref_links.push_back(f.links);
      const std::vector<double> ref = MaxMinFairRates(ref_links, capacity);

      ASSERT_EQ(ref.size(), live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        const double got = rates[live[i].slot];
        const double want = ref[i];
        if (std::isinf(want)) {
          EXPECT_TRUE(std::isinf(got)) << "seed " << seed << " batch " << batch;
        } else {
          EXPECT_EQ(got, want)  // bitwise: no tolerance
              << "seed " << seed << " batch " << batch << " flow " << i;
        }
      }
    }
  }
}

// Counters must reflect the asymptotic win.  Both paths pay O(L) once per
// solve, but the reference additionally rescans every flow and every link
// per bottleneck round; the heap path only touches entries incident to the
// round's bottleneck.  With F flows on F *distinct* bottlenecks (worst case
// for the scan: F rounds) the reference does ~F x (F + 2L) work while the
// heap path stays ~O(F + L).
TEST(MaxMinFairSolver, CountersShowSubLinearPerRoundWork) {
  const std::size_t n = 100;  // nodes -> 200 links
  std::vector<double> capacity(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    capacity[i] = 10.0 + static_cast<double>(i);  // distinct uplink shares
    capacity[n + i] = 1e9;
  }
  MaxMinFairSolver solver;
  solver.reset_links(capacity);
  std::vector<std::vector<std::size_t>> flow_links;
  for (std::size_t f = 0; f < n; ++f) {
    const std::size_t links[2] = {f, n + f};
    solver.add_flow(f, links, 2);
    flow_links.push_back({f, n + f});
  }
  std::vector<double> rates;
  SolveCounters inc;
  solver.solve(rates, &inc);
  SolveCounters ref;
  const auto ref_rates = MaxMinFairRates(flow_links, capacity, &ref);
  for (std::size_t f = 0; f < n; ++f) EXPECT_EQ(rates[f], ref_rates[f]);

  // Every flow is its own bottleneck: F rounds on both paths.
  EXPECT_EQ(ref.rounds, n);
  EXPECT_EQ(inc.rounds, n);
  // Reference: per-round full rescans.  Heap: one init pass + one pop per
  // round, no rescans — over an order of magnitude fewer link inspections.
  EXPECT_EQ(ref.links_scanned, ref.rounds * 2 * n);
  EXPECT_EQ(ref.flows_scanned, ref.rounds * n);
  EXPECT_LE(inc.links_scanned, 2 * n + 2 * inc.rounds);
  EXPECT_EQ(inc.flows_scanned, n);
  EXPECT_LT(inc.links_scanned * 10, ref.links_scanned);
}

// ---------- Network level: randomized churn scenarios -----------------------

struct ScenarioResult {
  std::vector<int> completion_order;       // flow label, callback order
  std::vector<double> completion_times;    // one per completion, same order
  std::vector<double> rate_samples;        // flow_rate probes
  double bytes_delivered = 0.0;
  std::uint64_t events = 0;
};

/// Replays one randomized churn scenario (same-timestamp bursts, staggered
/// starts, scheduled cancels, completion-driven restarts) on either path.
ScenarioResult RunScenario(std::uint64_t seed, bool incremental) {
  Rng rng(seed);
  const std::size_t nodes = static_cast<std::size_t>(rng.uniform_int(4, 12));
  NetworkConfig config;
  config.num_nodes = nodes;
  config.uplink_bps = rng.uniform(50.0, 400.0);
  config.downlink_bps = rng.uniform(100.0, 800.0);
  config.core_bps = rng.uniform(0.0, 1.0) < 0.3
                        ? rng.uniform(100.0, 1000.0)
                        : 0.0;
  config.incremental = incremental;

  sim::Simulator sim;
  Network net(sim, config);
  ScenarioResult out;
  std::vector<FlowId> started;

  auto pick_pair = [&rng, nodes](NodeId& src, NodeId& dst) {
    const auto s = static_cast<NodeId::value_type>(rng.index(nodes));
    auto d = static_cast<NodeId::value_type>(rng.index(nodes));
    if (d == s) d = static_cast<NodeId::value_type>((d + 1) % nodes);
    src = NodeId(s);
    dst = NodeId(d);
  };

  int label = 0;
  const int bursts = rng.uniform_int(3, 8);
  double t = 0.0;
  for (int b = 0; b < bursts; ++b) {
    t += rng.uniform(0.0, 5.0);  // occasionally zero: coincident bursts
    const int burst_flows = rng.uniform_int(1, 6);
    for (int f = 0; f < burst_flows; ++f) {
      const int this_label = label++;
      const double bytes = rng.uniform(100.0, 5000.0);
      const bool chain = rng.uniform(0.0, 1.0) < 0.25;
      sim.schedule_at(t, [&, this_label, bytes, chain] {
        NodeId src, dst;
        pick_pair(src, dst);
        const int chained_label = chain ? 10000 + this_label : -1;
        started.push_back(net.start_flow(src, dst, bytes, [&, this_label,
                                                           chained_label] {
          out.completion_order.push_back(this_label);
          out.completion_times.push_back(sim.now());
          if (chained_label >= 0) {
            // Restart from inside the completion callback (re-entrancy).
            NodeId s2, d2;
            pick_pair(s2, d2);
            net.start_flow(s2, d2, 250.0, [&, chained_label] {
              out.completion_order.push_back(chained_label);
              out.completion_times.push_back(sim.now());
            });
          }
        }));
      });
    }
    // Probe rates mid-run (forces a flush on the incremental path) and
    // cancel a random earlier flow.
    const double probe_t = t + rng.uniform(0.1, 3.0);
    const std::size_t cancel_ix = rng.index(64);
    sim.schedule_at(probe_t, [&, cancel_ix] {
      for (const FlowId id : started) {
        out.rate_samples.push_back(net.flow_rate(id));
      }
      if (!started.empty()) {
        net.cancel_flow(started[cancel_ix % started.size()]);
      }
    });
  }
  sim.run();
  out.bytes_delivered = net.bytes_delivered();
  out.events = sim.events_processed();
  return out;
}

// The acceptance property: >= 40 seeds of random flow churn, identical
// rates, completion order, completion times and bytes_delivered — exact
// double equality, no tolerance.
TEST(NetworkEquivalence, IncrementalMatchesReferenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const ScenarioResult inc = RunScenario(seed, true);
    const ScenarioResult ref = RunScenario(seed, false);
    ASSERT_EQ(inc.completion_order, ref.completion_order) << "seed " << seed;
    ASSERT_EQ(inc.completion_times.size(), ref.completion_times.size());
    for (std::size_t i = 0; i < inc.completion_times.size(); ++i) {
      EXPECT_EQ(inc.completion_times[i], ref.completion_times[i])
          << "seed " << seed << " completion " << i;
    }
    ASSERT_EQ(inc.rate_samples.size(), ref.rate_samples.size())
        << "seed " << seed;
    for (std::size_t i = 0; i < inc.rate_samples.size(); ++i) {
      EXPECT_EQ(inc.rate_samples[i], ref.rate_samples[i])
          << "seed " << seed << " sample " << i;
    }
    EXPECT_EQ(inc.bytes_delivered, ref.bytes_delivered) << "seed " << seed;
  }
}

// Batching must actually batch: on the incremental path strictly fewer
// solves run than were requested whenever bursts exist.
TEST(NetworkEquivalence, IncrementalPathBatchesRecomputes) {
  sim::Simulator sim;
  NetworkConfig config;
  config.num_nodes = 8;
  config.uplink_bps = 100.0;
  config.downlink_bps = 200.0;
  Network net(sim, config);
  sim.schedule_at(1.0, [&] {
    for (int i = 0; i < 7; ++i) {
      net.start_flow(NodeId(0), NodeId(static_cast<NodeId::value_type>(i + 1)),
                     700.0, [] {});
    }
  });
  sim.run();
  const NetStats& s = net.stats();
  EXPECT_GT(s.recomputes_requested, s.recomputes_run);
  EXPECT_EQ(s.recomputes_batched(), s.recomputes_requested - s.recomputes_run);
  EXPECT_GT(s.wall_seconds, 0.0);
}

// ---------- experiment level ------------------------------------------------

// A full experiment (apps, shuffle fan-out, DFS reads, manager rounds) must
// report identical figures on both rate paths.
TEST(NetworkEquivalence, ExperimentResultsIdenticalAcrossRatePaths) {
  namespace wl = custody::workload;
  wl::ExperimentConfig config;
  config.num_nodes = 12;
  config.kinds = {wl::WorkloadKind::kSort};  // shuffle-heavy: network matters
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 3;
  config.trace.files_per_kind = 4;
  config.seed = 1234;

  config.incremental_network = true;
  const wl::ExperimentResult inc = wl::RunExperiment(config);
  config.incremental_network = false;
  const wl::ExperimentResult ref = wl::RunExperiment(config);

  EXPECT_EQ(inc.makespan, ref.makespan);
  EXPECT_EQ(inc.jobs_completed, ref.jobs_completed);
  EXPECT_EQ(inc.jct.mean, ref.jct.mean);
  EXPECT_EQ(inc.jct.stddev, ref.jct.stddev);
  EXPECT_EQ(inc.input_stage.mean, ref.input_stage.mean);
  EXPECT_EQ(inc.net_bytes_delivered, ref.net_bytes_delivered);
  EXPECT_EQ(inc.overall_task_locality_percent,
            ref.overall_task_locality_percent);
  // Same flow-set changes on both paths; only the executed-solve count may
  // differ (batching).
  EXPECT_EQ(inc.net_stats.recomputes_requested,
            ref.net_stats.recomputes_requested);
  EXPECT_LT(inc.net_stats.recomputes_run, ref.net_stats.recomputes_run);
  EXPECT_EQ(ref.net_stats.recomputes_batched, 0u);
  EXPECT_GT(inc.net_stats.recomputes_batched, 0u);
}

}  // namespace
}  // namespace custody::net
