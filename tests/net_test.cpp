// Tests for the fluid network: max-min fairness properties, completion
// timing, contention, cancellation, and the core-bottleneck option.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace custody::net {
namespace {

using custody::NodeId;
using custody::units::Gbps;
using custody::units::MB;

NetworkConfig SmallConfig(std::size_t nodes = 4) {
  NetworkConfig c;
  c.num_nodes = nodes;
  c.uplink_bps = 100.0;    // small round numbers for exact math
  c.downlink_bps = 200.0;
  return c;
}

// ---------- MaxMinFairRates (pure) ----------------------------------------

TEST(MaxMinFairRates, SingleFlowGetsBottleneck) {
  const auto rates = MaxMinFairRates({{0, 1}}, {100.0, 200.0});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 100.0);
}

TEST(MaxMinFairRates, EqualShareOnSharedLink) {
  // Two flows share link 0 (cap 100); each also uses a private link.
  const auto rates = MaxMinFairRates({{0, 1}, {0, 2}}, {100.0, 500.0, 500.0});
  EXPECT_DOUBLE_EQ(rates[0], 50.0);
  EXPECT_DOUBLE_EQ(rates[1], 50.0);
}

TEST(MaxMinFairRates, WaterFillingUnlocksLeftover) {
  // Flow 0 is pinned to 10 by its private link; flow 1 then gets the rest
  // of the shared link (100 - 10 = 90).
  const auto rates = MaxMinFairRates({{0, 1}, {1}}, {10.0, 100.0});
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 90.0);
}

TEST(MaxMinFairRates, EmptyInput) {
  EXPECT_TRUE(MaxMinFairRates({}, {100.0}).empty());
}

// Regression: a flow with an empty link list was never frozen by any
// bottleneck, so `remaining` never reached 0 — in Release builds (assert
// compiled out) the solver spun forever.  Such a flow is unconstrained
// and must get unbounded rate without disturbing the others.
TEST(MaxMinFairRates, EmptyLinkListGetsUnboundedRate) {
  const auto rates = MaxMinFairRates({{}, {0}}, {100.0});
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_TRUE(std::isinf(rates[0]));
  EXPECT_GT(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 100.0);
}

TEST(MaxMinFairRates, AllFlowsLinklessTerminates) {
  const auto rates = MaxMinFairRates({{}, {}, {}}, {50.0});
  ASSERT_EQ(rates.size(), 3u);
  for (double r : rates) EXPECT_TRUE(std::isinf(r));
}

// Property: no link over capacity, and allocation is max-min (no flow can
// grow without shrinking a flow of smaller-or-equal rate).
TEST(MaxMinFairRates, PropertyFeasibleAndMaxMin) {
  custody::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int num_links = rng.uniform_int(2, 8);
    std::vector<double> capacity(num_links);
    for (auto& c : capacity) c = rng.uniform(10.0, 100.0);
    const int num_flows = rng.uniform_int(1, 12);
    std::vector<std::vector<std::size_t>> flow_links(num_flows);
    for (auto& links : flow_links) {
      const int degree = rng.uniform_int(1, 2);
      for (int d = 0; d < degree; ++d) {
        const std::size_t l = rng.index(num_links);
        if (std::find(links.begin(), links.end(), l) == links.end()) {
          links.push_back(l);
        }
      }
    }
    const auto rates = MaxMinFairRates(flow_links, capacity);

    // Feasibility: per-link load <= capacity (small epsilon).
    std::vector<double> load(num_links, 0.0);
    for (int f = 0; f < num_flows; ++f) {
      for (std::size_t l : flow_links[f]) load[l] += rates[f];
    }
    for (int l = 0; l < num_links; ++l) {
      EXPECT_LE(load[l], capacity[l] + 1e-6);
    }

    // Max-min: every flow is bottlenecked by a saturated link on which it
    // has the maximal rate.
    for (int f = 0; f < num_flows; ++f) {
      bool has_bottleneck = false;
      for (std::size_t l : flow_links[f]) {
        if (load[l] < capacity[l] - 1e-6) continue;  // not saturated
        bool is_max_on_link = true;
        for (int g = 0; g < num_flows; ++g) {
          if (g == f) continue;
          const auto& gl = flow_links[g];
          if (std::find(gl.begin(), gl.end(), l) != gl.end() &&
              rates[g] > rates[f] + 1e-6) {
            is_max_on_link = false;
            break;
          }
        }
        if (is_max_on_link) {
          has_bottleneck = true;
          break;
        }
      }
      EXPECT_TRUE(has_bottleneck) << "flow " << f << " lacks a bottleneck";
    }
  }
}

// ---------- Network (simulated) --------------------------------------------

TEST(Network, SingleTransferTime) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  double done_at = -1.0;
  net.start_flow(NodeId(0), NodeId(1), 1000.0, [&] { done_at = sim.now(); });
  sim.run();
  // Bottleneck is the 100 B/s uplink: 1000 bytes -> 10 seconds.
  EXPECT_NEAR(done_at, 10.0, 1e-9);
  EXPECT_NEAR(net.bytes_delivered(), 1000.0, 1e-6);
}

TEST(Network, TwoFlowsShareUplink) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  double t1 = -1.0;
  double t2 = -1.0;
  net.start_flow(NodeId(0), NodeId(1), 1000.0, [&] { t1 = sim.now(); });
  net.start_flow(NodeId(0), NodeId(2), 1000.0, [&] { t2 = sim.now(); });
  sim.run();
  // Each flow gets 50 B/s while both are active: both finish at t = 20.
  EXPECT_NEAR(t1, 20.0, 1e-9);
  EXPECT_NEAR(t2, 20.0, 1e-9);
}

TEST(Network, RateIncreasesWhenCompetitorFinishes) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  double t_small = -1.0;
  double t_large = -1.0;
  net.start_flow(NodeId(0), NodeId(1), 500.0, [&] { t_small = sim.now(); });
  net.start_flow(NodeId(0), NodeId(2), 1500.0, [&] { t_large = sim.now(); });
  sim.run();
  // Shared at 50 B/s until the small one finishes at t=10 (500 bytes);
  // the large one then has 1000 bytes left at 100 B/s -> finishes at 20.
  EXPECT_NEAR(t_small, 10.0, 1e-9);
  EXPECT_NEAR(t_large, 20.0, 1e-9);
}

TEST(Network, DownlinkCanBeTheBottleneck) {
  sim::Simulator sim;
  NetworkConfig config = SmallConfig();
  config.downlink_bps = 30.0;  // below the 100 B/s uplink
  Network net(sim, config);
  double t = -1.0;
  net.start_flow(NodeId(0), NodeId(1), 300.0, [&] { t = sim.now(); });
  sim.run();
  EXPECT_NEAR(t, 10.0, 1e-9);
}

TEST(Network, ManyToOneCongestsDownlink) {
  sim::Simulator sim;
  NetworkConfig config = SmallConfig(8);
  config.downlink_bps = 100.0;
  Network net(sim, config);
  int completed = 0;
  double last = 0.0;
  for (int s = 1; s <= 4; ++s) {
    net.start_flow(NodeId(static_cast<NodeId::value_type>(s)), NodeId(0),
                   250.0, [&] {
                     ++completed;
                     last = sim.now();
                   });
  }
  sim.run();
  EXPECT_EQ(completed, 4);
  // 4 x 250 bytes through a 100 B/s downlink: exactly 10 seconds.
  EXPECT_NEAR(last, 10.0, 1e-9);
}

TEST(Network, CoreBottleneckLimitsAggregate) {
  sim::Simulator sim;
  NetworkConfig config = SmallConfig(6);
  config.core_bps = 50.0;  // oversubscribed fabric
  Network net(sim, config);
  double t = -1.0;
  // Disjoint node pairs: without the core each flow would get 100 B/s.
  net.start_flow(NodeId(0), NodeId(1), 250.0, [&] { t = sim.now(); });
  net.start_flow(NodeId(2), NodeId(3), 250.0, [&] { t = sim.now(); });
  sim.run();
  // 25 B/s each through the 50 B/s core -> 10 s.
  EXPECT_NEAR(t, 10.0, 1e-9);
}

TEST(Network, CancelPreventsCompletion) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  bool completed = false;
  const FlowId id =
      net.start_flow(NodeId(0), NodeId(1), 1000.0, [&] { completed = true; });
  sim.schedule(1.0, [&] { net.cancel_flow(id); });
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_FALSE(net.flow_active(id));
}

TEST(Network, CancelReleasesBandwidth) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  double t = -1.0;
  const FlowId victim = net.start_flow(NodeId(0), NodeId(1), 10000.0, [] {});
  net.start_flow(NodeId(0), NodeId(2), 1000.0, [&] { t = sim.now(); });
  sim.schedule(2.0, [&] { net.cancel_flow(victim); });
  sim.run();
  // 2 s at 50 B/s = 100 bytes, then 900 bytes at 100 B/s = 9 s -> t = 11.
  EXPECT_NEAR(t, 11.0, 1e-9);
}

TEST(Network, CompletionCallbackCanStartNewFlow) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  double t = -1.0;
  net.start_flow(NodeId(0), NodeId(1), 1000.0, [&] {
    net.start_flow(NodeId(1), NodeId(2), 1000.0, [&] { t = sim.now(); });
  });
  sim.run();
  EXPECT_NEAR(t, 20.0, 1e-9);
}

TEST(Network, RejectsInvalidFlows) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  EXPECT_THROW(net.start_flow(NodeId(0), NodeId(0), 10.0, [] {}),
               std::invalid_argument);
  EXPECT_THROW(net.start_flow(NodeId(0), NodeId(1), 0.0, [] {}),
               std::invalid_argument);
}

TEST(Network, FlowIntrospection) {
  sim::Simulator sim;
  Network net(sim, SmallConfig());
  const FlowId id = net.start_flow(NodeId(0), NodeId(1), 1000.0, [] {});
  EXPECT_DOUBLE_EQ(net.flow_rate(id), 100.0);
  EXPECT_DOUBLE_EQ(net.flow_remaining(id), 1000.0);
  EXPECT_EQ(net.active_flow_count(), 1u);
  sim.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_DOUBLE_EQ(net.flow_rate(id), 0.0);
}

TEST(Network, UncontendedTransferTime) {
  sim::Simulator sim;
  NetworkConfig config;
  config.num_nodes = 2;
  config.uplink_bps = Gbps(2.0);
  config.downlink_bps = Gbps(40.0);
  Network net(sim, config);
  EXPECT_NEAR(net.uncontended_transfer_time(MB(128.0)),
              MB(128.0) / Gbps(2.0), 1e-12);
}

// ---------- same-timestamp batching ----------------------------------------

TEST(Network, FanOutInOneEventBatchesToOneRecompute) {
  sim::Simulator sim;
  Network net(sim, SmallConfig(8));
  constexpr int kFlows = 6;
  std::vector<double> done_at(kFlows, -1.0);
  std::vector<double> rates;
  sim.schedule(1.0, [&] {
    std::vector<FlowId> ids;
    for (int i = 0; i < kFlows; ++i) {
      ids.push_back(net.start_flow(NodeId(0),
                                   NodeId(static_cast<NodeId::value_type>(i + 1)),
                                   600.0, [&done_at, &sim, i] {
                                     done_at[static_cast<std::size_t>(i)] =
                                         sim.now();
                                   }));
    }
    // Observing a rate mid-burst flushes the pending recompute: all flows
    // must already see their final (post-burst) fair share.
    for (const FlowId id : ids) rates.push_back(net.flow_rate(id));
  });
  sim.run();
  ASSERT_EQ(rates.size(), static_cast<std::size_t>(kFlows));
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 100.0 / kFlows);
  // 600 bytes at 100/6 B/s -> 36 s, all identical.
  for (double t : done_at) EXPECT_NEAR(t, 37.0, 1e-9);
  // 6 flow starts request 6 recomputes and the single completion event (all
  // flows finish together) requests one more; batching collapses them to
  // exactly one solve per distinct timestamp.
  const NetStats& stats = net.stats();
  EXPECT_EQ(stats.recomputes_requested, 7u);
  EXPECT_EQ(stats.recomputes_run, 2u);
  EXPECT_EQ(stats.recomputes_batched(),
            stats.recomputes_requested - stats.recomputes_run);
  EXPECT_GT(stats.rounds, 0u);
}

TEST(Network, FanOutIdenticalWithAndWithoutBatching) {
  // N flows started in one event must produce identical completion times
  // whether recomputes are batched (incremental) or not (reference).
  auto run = [](bool incremental) {
    sim::Simulator sim;
    NetworkConfig config = SmallConfig(10);
    config.incremental = incremental;
    config.component_partitioned = incremental;
    Network net(sim, config);
    std::vector<double> done(9, -1.0);
    sim.schedule(0.5, [&] {
      for (int i = 0; i < 9; ++i) {
        net.start_flow(NodeId(0),
                       NodeId(static_cast<NodeId::value_type>(i + 1)),
                       100.0 * (i + 1), [&done, &sim, i] {
                         done[static_cast<std::size_t>(i)] = sim.now();
                       });
      }
    });
    sim.run();
    return done;
  };
  const auto batched = run(true);
  const auto reference = run(false);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], reference[i]) << "flow " << i;  // bit-identical
  }
}

TEST(Network, CancelInsideCompletionCallback) {
  // A completion callback cancelling a sibling flow mid-burst must not
  // disturb the remaining flows, on either rate path.
  auto run = [](bool incremental) {
    sim::Simulator sim;
    NetworkConfig config = SmallConfig(8);
    config.incremental = incremental;
    config.component_partitioned = incremental;
    Network net(sim, config);
    FlowId victim;
    bool victim_completed = false;
    double survivor_done = -1.0;
    double first_done = -1.0;
    // Same uplink: 3 flows at 100/3 B/s each.
    net.start_flow(NodeId(0), NodeId(1), 100.0, [&] {
      first_done = sim.now();
      net.cancel_flow(victim);
    });
    victim =
        net.start_flow(NodeId(0), NodeId(2), 900.0, [&] { victim_completed = true; });
    net.start_flow(NodeId(0), NodeId(3), 400.0,
                   [&] { survivor_done = sim.now(); });
    sim.run();
    EXPECT_NEAR(first_done, 3.0, 1e-9);
    EXPECT_FALSE(victim_completed);
    // Survivor: 3 s at 100/3 B/s = 100 bytes, then 300 bytes alone at
    // 100 B/s -> done at t = 6.
    EXPECT_NEAR(survivor_done, 6.0, 1e-9);
    EXPECT_EQ(net.active_flow_count(), 0u);
    return std::pair{first_done, survivor_done};
  };
  const auto batched = run(true);
  const auto reference = run(false);
  EXPECT_EQ(batched.first, reference.first);
  EXPECT_EQ(batched.second, reference.second);
}

// ---------- cancel churn ----------------------------------------------------

TEST(Network, CancelChurnKeepsAccountingExact) {
  // Regression for the O(F) cancel path: heavy interleaved start/cancel
  // churn (head, tail, middle, repeated and unknown ids) must keep slot
  // reuse, rates and delivered-byte accounting exact.
  sim::Simulator sim;
  Network net(sim, SmallConfig(16));
  custody::Rng rng(7);
  std::vector<FlowId> live;
  int completed = 0;
  double expected_bytes = 0.0;
  for (int wave = 0; wave < 20; ++wave) {
    sim.schedule(5.0 * wave, [&, wave] {
      // Cancel about half the currently live flows in random order.
      rng.shuffle(live);
      const std::size_t keep = live.size() / 2;
      while (live.size() > keep) {
        net.cancel_flow(live.back());
        net.cancel_flow(live.back());  // double-cancel: silent no-op
        live.pop_back();
      }
      net.cancel_flow(FlowId(9999999 + wave));  // unknown id: silent no-op
      for (int i = 0; i < 8; ++i) {
        const auto src = static_cast<NodeId::value_type>(rng.index(16));
        auto dst = static_cast<NodeId::value_type>(rng.index(16));
        if (dst == src) dst = (dst + 1) % 16;
        const double bytes = rng.uniform(50.0, 500.0);
        live.push_back(net.start_flow(NodeId(src), NodeId(dst), bytes,
                                      [&completed] { ++completed; }));
      }
    });
  }
  sim.schedule(100.0 + 1e-9, [&] {
    // Let every survivor run to completion from here on.
    for (const FlowId id : live) {
      expected_bytes += net.flow_remaining(id);
    }
  });
  sim.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
  EXPECT_GT(completed, 0);
  // Everything still live at the last wave eventually completed, and the
  // delivered-byte ledger covered at least those remaining bytes.
  EXPECT_GE(net.bytes_delivered(), expected_bytes - 1e-6);
}

// ---------- stranded-flow guard ---------------------------------------------

TEST(AllFlowsStranded, DetectsZeroRateFlowSets) {
  EXPECT_FALSE(AllFlowsStranded(0, 0.0));  // empty set: nothing stranded
  EXPECT_TRUE(AllFlowsStranded(1, 0.0));
  EXPECT_TRUE(AllFlowsStranded(5, 0.0));
  EXPECT_TRUE(AllFlowsStranded(2, -1.0));  // defensive: negative is stranded
  EXPECT_FALSE(AllFlowsStranded(1, std::numeric_limits<double>::denorm_min()));
  EXPECT_FALSE(AllFlowsStranded(3, 100.0));
}

TEST(Network, StrandedFlowsFailLoudly) {
  // rem_cap clamp-to-zero rounding path: splitting the smallest subnormal
  // capacity between two flows rounds each share to exactly 0.  Without the
  // guard no completion event can be armed and the run hangs silently.
  NetworkConfig config = SmallConfig(4);
  config.uplink_bps = std::numeric_limits<double>::denorm_min();

  {  // incremental path: the batched recompute flushes at the next step.
    sim::Simulator sim;
    Network net(sim, config);
    net.start_flow(NodeId(0), NodeId(1), 10.0, [] {});
    net.start_flow(NodeId(0), NodeId(2), 10.0, [] {});
    EXPECT_THROW(sim.run(), std::runtime_error);
  }
  {  // observing a rate flushes too, and must surface the same failure.
    sim::Simulator sim;
    Network net(sim, config);
    const FlowId a = net.start_flow(NodeId(0), NodeId(1), 10.0, [] {});
    net.start_flow(NodeId(0), NodeId(2), 10.0, [] {});
    EXPECT_THROW((void)net.flow_rate(a), std::runtime_error);
  }
  {  // reference path recomputes eagerly inside start_flow.
    config.incremental = false;
    config.component_partitioned = false;
    sim::Simulator sim;
    Network net(sim, config);
    net.start_flow(NodeId(0), NodeId(1), 10.0, [] {});
    EXPECT_THROW(net.start_flow(NodeId(0), NodeId(2), 10.0, [] {}),
                 std::runtime_error);
  }
}

TEST(Network, SingleSubnormalRateFlowIsNotStranded) {
  // One flow on the subnormal uplink keeps a positive (subnormal) rate, so
  // the guard must not trip; cancel it rather than simulate the eon-long
  // transfer.
  NetworkConfig config = SmallConfig(4);
  config.uplink_bps = std::numeric_limits<double>::denorm_min();
  sim::Simulator sim;
  Network net(sim, config);
  const FlowId id = net.start_flow(NodeId(0), NodeId(1), 10.0, [] {});
  EXPECT_GT(net.flow_rate(id), 0.0);
  net.cancel_flow(id);
  sim.run();
  EXPECT_EQ(net.active_flow_count(), 0u);
}

TEST(Network, TinyResidualBytesDoNotStallTheClock) {
  // Regression: leftover rounding bytes at multi-GB/s rates used to map to
  // delays below the double-precision tick and spin the simulator forever.
  sim::Simulator sim;
  NetworkConfig config;
  config.num_nodes = 4;
  config.uplink_bps = Gbps(2.0);
  config.downlink_bps = Gbps(40.0);
  Network net(sim, config);
  int completed = 0;
  // Stagger flows so rates change mid-transfer and residuals accumulate.
  for (int i = 0; i < 40; ++i) {
    sim.schedule(0.37 * i + 60.0, [&net, &sim, &completed, i] {
      net.start_flow(NodeId(static_cast<NodeId::value_type>(i % 3)),
                     NodeId(3), MB(128.0) * (1.0 + 0.013 * i),
                     [&completed] { ++completed; });
    });
  }
  sim.run();
  EXPECT_EQ(completed, 40);
}

TEST(Network, FlowsCompleteAtSteadyStateHorizons) {
  // Regression for long horizons: the completion check forgives up to
  // rate * epsilon residual bytes, but the residual left by
  // `elapsed * rate` rounding grows with the clock (one ulp of t ~ 1e9 is
  // ~2.4e-7 s of traffic).  With the historical absolute 1e-9 tolerance
  // the check kept missing at large t and re-armed sub-ulp completion
  // events forever; TimeEpsilonAt(now) scales with the clock and absorbs
  // the residual.  Same staggered-contention shape as the small-time
  // residual test, pushed out to steady-state timestamps.
  for (const double t0 : {1400734916.308764, 1364094544598.6082}) {
    sim::Simulator sim;
    NetworkConfig config;
    config.num_nodes = 4;
    config.uplink_bps = Gbps(2.0);
    config.downlink_bps = Gbps(40.0);
    Network net(sim, config);
    int completed = 0;
    for (int i = 0; i < 25; ++i) {
      sim.schedule(t0 + 0.37 * i, [&net, &completed, i] {
        net.start_flow(NodeId(static_cast<NodeId::value_type>(i % 3)),
                       NodeId(3), MB(96.0) * (1.0 + 0.013 * i),
                       [&completed] { ++completed; });
      });
    }
    sim.run();
    EXPECT_EQ(completed, 25) << "t0=" << t0;
    EXPECT_EQ(net.active_flow_count(), 0u);
    EXPECT_GT(sim.now(), t0);
  }
}

}  // namespace
}  // namespace custody::net
