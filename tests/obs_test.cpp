// Tests for the observability layer (src/obs/): the ring-buffer Tracer,
// the Chrome trace-event exporter, and the JCT critical-path analyzer —
// plus the subsystem's two global contracts: tracing never changes
// simulation results (bit-identical on/off) and the analyzer's per-job
// segment sums reconcile with measured JCT within 1e-9.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/perfetto.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/experiment.h"
#include "workload/harness.h"
#include "workload/sweep.h"

namespace custody {
namespace {

using namespace custody::obs;
using namespace custody::workload;

// ---------- a minimal JSON validator ----------------------------------------
//
// Recursive-descent acceptance check (structure only, no DOM): enough to
// assert the exporter emits syntactically valid JSON without pulling a
// parser dependency into the repo.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  [[nodiscard]] bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(JsonChecker(R"({"a": [1, -2.5e3, "x\n", null], "b": {}})").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": }").valid());
  EXPECT_FALSE(JsonChecker("[1, 2").valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 01x}").valid());
}

// ---------- TraceBuffer ------------------------------------------------------

TEST(TraceBuffer, RecordsUpToCapacityWithoutDropping) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 4; ++i) {
    buffer.push({.t0 = static_cast<double>(i)});
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.recorded(), 4u);
  EXPECT_EQ(buffer.dropped(), 0u);
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t0, i);
  }
}

TEST(TraceBuffer, WrapOverwritesOldestAndStaysChronological) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 7; ++i) {
    buffer.push({.t0 = static_cast<double>(i)});
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.recorded(), 7u);
  EXPECT_EQ(buffer.dropped(), 3u);
  // Events 0..2 were overwritten; 3..6 remain, oldest first.
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t0, i + 3);
  }
}

TEST(Tracer, StampsSpansAndInstantsFromSimClock) {
  sim::Simulator sim;
  Tracer tracer(sim, {.enabled = true, .capacity = 16});
  sim.post_at(2.5, [&tracer] {
    tracer.span({.t0 = 1.0, .kind = EventKind::kStageSpan});
    tracer.instant({.node = 3, .kind = EventKind::kNodeFailure});
  });
  sim.run();
  const auto events = tracer.buffer()->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].t0, 1.0);
  EXPECT_DOUBLE_EQ(events[0].t1, 2.5);  // span end filled from the clock
  EXPECT_DOUBLE_EQ(events[1].t0, 2.5);  // instant stamped at now
  EXPECT_DOUBLE_EQ(events[1].t1, 2.5);
  EXPECT_EQ(events[1].node, 3);
}

TEST(Tracer, IdOfMapsInvalidIdsToMinusOne) {
  EXPECT_EQ(IdOf(NodeId(7)), 7);
  EXPECT_EQ(IdOf(NodeId::invalid()), -1);
  EXPECT_EQ(IdOf(TaskId::invalid()), -1);
}

// ---------- config plumbing --------------------------------------------------

TEST(TracingConfig, ZeroCapacityRejectedWhenEnabled) {
  ExperimentConfig config;
  config.tracing.enabled = true;
  config.tracing.capacity = 0;
  EXPECT_THROW(ValidateConfig(config), std::invalid_argument);
  config.tracing.enabled = false;  // capacity is irrelevant when disabled
  EXPECT_NO_THROW(ValidateConfig(config));
}

TEST(TracingConfig, DisabledRunCarriesNoBuffer) {
  ExperimentConfig config;
  config.num_nodes = 8;
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 2;
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.trace, nullptr);
}

// ---------- the bit-identical on/off contract --------------------------------

ExperimentConfig TracedConfig() {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.kinds = {WorkloadKind::kPageRank, WorkloadKind::kWordCount,
                  WorkloadKind::kSort};
  config.trace.num_apps = 4;
  config.trace.jobs_per_app = 3;
  config.trace.files_per_kind = 4;
  config.seed = 42;
  return config;
}

void ExpectSummaryEq(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
  EXPECT_DOUBLE_EQ(a.max, b.max);
}

void ExpectResultsBitIdentical(const ExperimentResult& a,
                               const ExperimentResult& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  ExpectSummaryEq(a.jct, b.jct);
  ExpectSummaryEq(a.job_locality, b.job_locality);
  ExpectSummaryEq(a.input_stage, b.input_stage);
  ExpectSummaryEq(a.sched_delay, b.sched_delay);
  EXPECT_DOUBLE_EQ(a.overall_task_locality_percent,
                   b.overall_task_locality_percent);
  EXPECT_DOUBLE_EQ(a.local_job_percent, b.local_job_percent);
  EXPECT_DOUBLE_EQ(a.net_bytes_delivered, b.net_bytes_delivered);
  EXPECT_EQ(a.launches_local, b.launches_local);
  EXPECT_EQ(a.launches_covered_busy, b.launches_covered_busy);
  EXPECT_EQ(a.launches_uncovered, b.launches_uncovered);
  EXPECT_EQ(a.manager_stats.executors_granted,
            b.manager_stats.executors_granted);
  EXPECT_EQ(a.manager_stats.allocation_rounds,
            b.manager_stats.allocation_rounds);
}

TEST(TracingOnOff, ResultsBitIdenticalAcrossManagers) {
  for (const ManagerKind manager :
       {ManagerKind::kStandalone, ManagerKind::kCustody, ManagerKind::kOffer,
        ManagerKind::kPool}) {
    auto off = TracedConfig();
    off.manager = manager;
    auto on = off;
    on.tracing.enabled = true;
    const auto result_off = RunExperiment(off);
    const auto result_on = RunExperiment(on);
    ASSERT_NE(result_on.trace, nullptr) << ManagerName(manager);
    EXPECT_GT(result_on.trace->size(), 0u) << ManagerName(manager);
    ExpectResultsBitIdentical(result_off, result_on);
  }
}

TEST(TracingOnOff, BitIdenticalUnderFailuresCacheAndSpeculation) {
  auto off = TracedConfig();
  off.cache_mb_per_node = 1024.0;
  off.speculation = true;
  off.speculation_multiplier = 1.2;
  off.node_failures = 2;
  off.failure_start = 5.0;
  off.slow_node_fraction = 0.25;
  auto on = off;
  on.tracing.enabled = true;
  const auto result_off = RunExperiment(off);
  const auto result_on = RunExperiment(on);
  EXPECT_EQ(result_on.nodes_failed, 2);
  ExpectResultsBitIdentical(result_off, result_on);
}

// ---------- the exporter -----------------------------------------------------

TEST(ChromeTrace, ExportsValidJsonWithLayerMetadata) {
  auto config = TracedConfig();
  config.tracing.enabled = true;
  const auto result = RunExperiment(config);
  ASSERT_NE(result.trace, nullptr);
  std::ostringstream os;
  WriteChromeTrace(result.trace->events(), os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* layer : {"jobs", "tasks", "scheduling", "network"}) {
    EXPECT_NE(json.find("\"" + std::string(layer) + "\""), std::string::npos)
        << layer;
  }
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // metadata
}

TEST(ChromeTrace, WritesFileAndRejectsBadPath) {
  TraceBuffer buffer(4);
  buffer.push({.t0 = 0.5, .t1 = 1.0, .kind = EventKind::kJobSpan});
  const std::string path = ::testing::TempDir() + "/custody_trace_test.json";
  WriteChromeTrace(buffer, path);
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_TRUE(JsonChecker(content.str()).valid());
  std::remove(path.c_str());
  EXPECT_THROW(WriteChromeTrace(buffer, "/nonexistent-dir/x/y.json"),
               std::runtime_error);
}

TEST(ChromeTrace, EmptyBufferStillValidJson) {
  std::ostringstream os;
  WriteChromeTrace(std::vector<TraceEvent>{}, os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

// ---------- the critical-path analyzer ---------------------------------------

/// The acceptance scenario: a 4-app mixed workload (all three paper
/// workloads in one trace), exported JSON valid AND every job's segment
/// sum reconciling with its measured JCT within 1e-9.
TEST(CriticalPath, MixedWorkloadReconcilesAndExportsValidJson) {
  auto config = TracedConfig();
  config.tracing.enabled = true;
  const auto result = RunExperiment(config);
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(result.trace->dropped(), 0u);

  // (1) The exported timeline is valid Chrome JSON.
  std::ostringstream os;
  WriteChromeTrace(result.trace->events(), os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());

  // (2) Every finished job's breakdown telescopes back to its JCT.
  const CriticalPathAnalyzer analyzer(result.trace->events());
  ASSERT_EQ(analyzer.jobs().size(),
            static_cast<std::size_t>(result.jobs_completed));
  for (const JobBreakdown& job : analyzer.jobs()) {
    EXPECT_GT(job.jct(), 0.0) << "job " << job.job;
    EXPECT_LT(std::abs(job.segment_sum() - job.jct()), 1e-9)
        << "job " << job.job << ": segments sum to " << job.segment_sum()
        << " but JCT is " << job.jct();
    EXPECT_GE(job.compute, 0.0);
    EXPECT_GE(job.sched_delay, -1e-12);
    EXPECT_GE(job.executor_wait, -1e-12);
  }
  // Mean JCT from the analyzer matches the metrics pipeline's.
  double total = 0.0;
  for (const JobBreakdown& job : analyzer.jobs()) total += job.jct();
  EXPECT_NEAR(total / static_cast<double>(analyzer.jobs().size()),
              result.jct.mean, 1e-9);
}

TEST(CriticalPath, ReconcilesUnderFailuresAndSpeculation) {
  auto config = TracedConfig();
  config.tracing.enabled = true;
  config.speculation = true;
  config.speculation_multiplier = 1.2;
  config.node_failures = 2;
  config.failure_start = 5.0;
  config.slow_node_fraction = 0.25;
  const auto result = RunExperiment(config);
  ASSERT_NE(result.trace, nullptr);
  ASSERT_EQ(result.trace->dropped(), 0u);
  const CriticalPathAnalyzer analyzer(result.trace->events());
  ASSERT_EQ(analyzer.jobs().size(),
            static_cast<std::size_t>(result.jobs_completed));
  for (const JobBreakdown& job : analyzer.jobs()) {
    EXPECT_LT(std::abs(job.segment_sum() - job.jct()), 1e-9)
        << "job " << job.job;
  }
}

TEST(CriticalPath, LocalityHistogramMatchesLaunchBreakdown) {
  // Without failures, every input task's final verdict corresponds 1:1 to
  // the Application's LaunchBreakdown counters (which also count finals:
  // resets decrement them).
  auto config = TracedConfig();
  config.tracing.enabled = true;
  const auto result = RunExperiment(config);
  ASSERT_NE(result.trace, nullptr);
  const CriticalPathAnalyzer analyzer(result.trace->events());
  const LocalityMissHistogram& misses = analyzer.locality_misses();
  EXPECT_EQ(misses.local, static_cast<std::uint64_t>(result.launches_local));
  EXPECT_EQ(misses.covered_busy,
            static_cast<std::uint64_t>(result.launches_covered_busy));
  EXPECT_EQ(misses.uncovered + misses.uncovered_replica_lost,
            static_cast<std::uint64_t>(result.launches_uncovered));
  EXPECT_EQ(misses.uncovered_replica_lost, 0u);  // no failures injected
  EXPECT_GT(misses.total(), 0u);
}

TEST(CriticalPath, TablesRenderWithoutThrowing) {
  auto config = TracedConfig();
  config.tracing.enabled = true;
  const auto result = RunExperiment(config);
  const CriticalPathAnalyzer analyzer(result.trace->events());
  EXPECT_NE(analyzer.breakdown_table().find("jct (s)"), std::string::npos);
  EXPECT_NE(analyzer.summary_table().find("mean"), std::string::npos);
  EXPECT_NE(analyzer.locality_table().find("local"), std::string::npos);
}

// ---------- traced parallel sweeps -------------------------------------------

TEST(TracedSweep, ParallelMatchesSerialWithPerRunTracers) {
  std::vector<ExperimentConfig> grid;
  for (const std::uint64_t seed : {42ull, 43ull}) {
    for (const WorkloadKind kind :
         {WorkloadKind::kWordCount, WorkloadKind::kSort}) {
      ExperimentConfig config;
      config.num_nodes = 12;
      config.kinds = {kind};
      config.trace.num_apps = 2;
      config.trace.jobs_per_app = 3;
      config.seed = seed;
      config.tracing.enabled = true;
      grid.push_back(config);
    }
  }
  const auto serial = RunSweep(grid, {.threads = 1});
  const auto parallel = RunSweep(grid, {.threads = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_NE(serial[i].trace, nullptr);
    ASSERT_NE(parallel[i].trace, nullptr);
    ExpectResultsBitIdentical(serial[i], parallel[i]);
    // Each run records into its own buffer; identical runs record the
    // same event stream.
    ASSERT_EQ(serial[i].trace->recorded(), parallel[i].trace->recorded());
    const auto a = serial[i].trace->events();
    const auto b = parallel[i].trace->events();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t e = 0; e < a.size(); ++e) {
      EXPECT_DOUBLE_EQ(a[e].t0, b[e].t0);
      EXPECT_DOUBLE_EQ(a[e].t1, b[e].t1);
      EXPECT_EQ(a[e].kind, b[e].kind);
      EXPECT_EQ(a[e].app, b[e].app);
      EXPECT_EQ(a[e].id, b[e].id);
    }
  }
}

TEST(TracedSweep, RingDropAccountingSurvivesTinyCapacity) {
  ExperimentConfig config;
  config.num_nodes = 12;
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 3;
  config.tracing.enabled = true;
  config.tracing.capacity = 32;  // force wrap-around
  const auto result = RunExperiment(config);
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(result.trace->size(), 32u);
  EXPECT_GT(result.trace->dropped(), 0u);
  EXPECT_EQ(result.trace->recorded(),
            result.trace->dropped() + result.trace->size());
  // The analyzer degrades gracefully on a truncated trace: any job whose
  // events survived still reconciles.
  const CriticalPathAnalyzer analyzer(result.trace->events());
  for (const JobBreakdown& job : analyzer.jobs()) {
    EXPECT_LT(std::abs(job.segment_sum() - job.jct()), 1e-9);
  }
}

}  // namespace
}  // namespace custody
