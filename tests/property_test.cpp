// Parameterized property sweeps over full experiments: system-level
// invariants that must hold for any seed, cluster size and workload.
#include <gtest/gtest.h>

#include <tuple>

#include "workload/experiment.h"

namespace custody::workload {
namespace {

ExperimentConfig Config(ManagerKind manager, WorkloadKind kind,
                        std::size_t nodes, std::uint64_t seed) {
  ExperimentConfig config;
  config.manager = manager;
  config.kinds = {kind};
  config.num_nodes = nodes;
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 4;
  config.trace.files_per_kind = 6;
  config.seed = seed;
  return config;
}

using Params = std::tuple<ManagerKind, WorkloadKind, std::size_t,
                          std::uint64_t>;

class ExperimentInvariants : public ::testing::TestWithParam<Params> {};

TEST_P(ExperimentInvariants, Hold) {
  const auto [manager, kind, nodes, seed] = GetParam();
  const auto result = RunExperiment(Config(manager, kind, nodes, seed));

  // Liveness: every submitted job completes.
  EXPECT_EQ(result.jobs_completed, 12);
  EXPECT_EQ(result.jct.count, 12u);

  // Sanity ranges.
  EXPECT_GE(result.job_locality.mean, 0.0);
  EXPECT_LE(result.job_locality.mean, 100.0);
  EXPECT_GE(result.overall_task_locality_percent, 0.0);
  EXPECT_LE(result.overall_task_locality_percent, 100.0);
  EXPECT_GE(result.local_job_percent, 0.0);
  EXPECT_LE(result.local_job_percent, 100.0);

  // Times are causal and non-negative.
  EXPECT_GT(result.jct.min, 0.0);
  EXPECT_GE(result.sched_delay.min, 0.0);
  EXPECT_GT(result.input_stage.min, 0.0);
  EXPECT_LE(result.input_stage.mean, result.jct.mean)
      << "input stage cannot exceed the whole job";
  EXPECT_GE(result.makespan, result.jct.max);

  // A perfectly-local job percentage of 100 requires task locality of 100.
  if (result.local_job_percent == 100.0) {
    EXPECT_DOUBLE_EQ(result.overall_task_locality_percent, 100.0);
  }

  // Launch counters partition launched input tasks.
  const int launches = result.launches_local + result.launches_covered_busy +
                       result.launches_uncovered;
  EXPECT_GT(launches, 0);
  EXPECT_NEAR(100.0 * result.launches_local / launches,
              result.overall_task_locality_percent, 1e-6);

  // Per-app fractions are valid probabilities.
  for (double f : result.per_app_local_job_fraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExperimentInvariants,
    ::testing::Combine(
        ::testing::Values(ManagerKind::kStandalone, ManagerKind::kCustody,
                          ManagerKind::kOffer),
        ::testing::Values(WorkloadKind::kPageRank, WorkloadKind::kWordCount,
                          WorkloadKind::kSort),
        ::testing::Values(std::size_t{12}, std::size_t{24}),
        ::testing::Values(std::uint64_t{3}, std::uint64_t{31})),
    [](const auto& info) {
      return std::string(ManagerName(std::get<0>(info.param))) + "_" +
             WorkloadName(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param)) + "n_s" +
             std::to_string(std::get<3>(info.param));
    });

class ReplicationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationSweep, MoreReplicasNeverHurtCustodyMuch) {
  // Locality opportunities grow with the replication factor; Custody's
  // achieved locality must be monotone up to noise.
  auto config = Config(ManagerKind::kCustody, WorkloadKind::kWordCount, 16, 5);
  config.replication = 1;
  const auto one = RunExperiment(config);
  config.replication = GetParam();
  const auto more = RunExperiment(config);
  EXPECT_GE(more.job_locality.mean, one.job_locality.mean - 3.0);
}

INSTANTIATE_TEST_SUITE_P(Factors, ReplicationSweep, ::testing::Values(2, 3, 5));

class ExecutorDensitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorDensitySweep, ClusterScalesWithExecutorsPerNode) {
  auto config = Config(ManagerKind::kCustody, WorkloadKind::kSort, 16, 9);
  config.executors_per_node = GetParam();
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 12);
  // More executors per node -> no worse completion times.
  if (GetParam() >= 4) {
    auto thin = config;
    thin.executors_per_node = 1;
    const auto thin_result = RunExperiment(thin);
    EXPECT_LE(result.jct.mean, thin_result.jct.mean + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Density, ExecutorDensitySweep,
                         ::testing::Values(1, 2, 4));

class WaitSweep : public ::testing::TestWithParam<double> {};

TEST_P(WaitSweep, SchedulerDelayBoundedByWaitPlusQueueing) {
  auto config =
      Config(ManagerKind::kStandalone, WorkloadKind::kWordCount, 16, 21);
  config.scheduler.locality_wait = GetParam();
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 12);
  EXPECT_GE(result.sched_delay.max, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Waits, WaitSweep,
                         ::testing::Values(0.0, 1.0, 3.0, 10.0));

}  // namespace
}  // namespace custody::workload
