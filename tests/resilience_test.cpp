// Tests for the resilience features: speculative execution of stragglers,
// node-failure injection across all layers, and the YARN-style pool
// manager.
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/pool_manager.h"
#include "common/units.h"
#include "obs/trace.h"
#include "workload/experiment.h"
#include "workload/failures.h"

namespace custody::workload {
namespace {

using custody::units::MB;

std::size_t CountKind(const std::vector<obs::TraceEvent>& events,
                      obs::EventKind kind) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const obs::TraceEvent& e) { return e.kind == kind; }));
}

ExperimentConfig SmallConfig(ManagerKind manager, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.manager = manager;
  config.kinds = {WorkloadKind::kWordCount};
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 5;
  config.trace.files_per_kind = 4;
  config.seed = seed;
  return config;
}

// ---------- pool manager ------------------------------------------------------

TEST(PoolManager, RunsExperimentsToCompletion) {
  const auto result = RunExperiment(SmallConfig(ManagerKind::kPool));
  EXPECT_EQ(result.jobs_completed, 15);
  EXPECT_EQ(result.manager_name, "pool");
  EXPECT_GT(result.manager_stats.executors_granted, 0u);
}

TEST(PoolManager, DataUnawareLikeStandaloneButDynamic) {
  // Pool grants random executors: locality lands near the standalone
  // baseline, far below Custody's.
  const auto pool = RunExperiment(SmallConfig(ManagerKind::kPool));
  const auto custody = RunExperiment(SmallConfig(ManagerKind::kCustody));
  EXPECT_GT(custody.overall_task_locality_percent,
            pool.overall_task_locality_percent);
  // Dynamic: executors come and go (releases happen).
  EXPECT_GT(pool.manager_stats.executors_released, 0u);
}

// ---------- speculation -------------------------------------------------------

TEST(Speculation, CountersConsistent) {
  auto config = SmallConfig(ManagerKind::kStandalone);
  config.speculation = true;
  config.speculation_multiplier = 1.2;
  // Hot files + skew: plenty of remote-read stragglers to clone.
  config.trace.zipf_skew = 1.2;
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 15);
  EXPECT_GE(result.speculative_launches, result.speculative_wins);
}

TEST(Speculation, CloningStragglersHelpsOrAtLeastDoesNotHurt) {
  auto config = SmallConfig(ManagerKind::kStandalone);
  config.trace.zipf_skew = 1.2;
  const auto plain = RunExperiment(config);
  config.speculation = true;
  config.speculation_multiplier = 1.2;
  const auto spec = RunExperiment(config);
  EXPECT_EQ(spec.jobs_completed, plain.jobs_completed);
  // Stragglers are remote reads; winning clones shorten the tail.
  EXPECT_LE(spec.jct.p95, plain.jct.p95 * 1.10);
  if (spec.speculative_wins > 0) {
    EXPECT_LE(spec.jct.mean, plain.jct.mean * 1.05);
  }
}

TEST(Speculation, NoClonesWithoutStragglers) {
  // Custody achieves near-perfect locality: tasks are uniform, nothing is
  // slow relative to siblings, so (almost) nothing gets cloned.
  auto config = SmallConfig(ManagerKind::kCustody);
  config.speculation = true;
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 15);
  EXPECT_LE(result.speculative_launches, 5);
}

// ---------- failure injection -------------------------------------------------

TEST(Failures, AllJobsCompleteDespiteCrashes) {
  for (const ManagerKind manager :
       {ManagerKind::kCustody, ManagerKind::kOffer, ManagerKind::kPool}) {
    auto config = SmallConfig(manager);
    config.node_failures = 3;
    config.failure_start = 5.0;
    config.failure_interval = 10.0;
    const auto result = RunExperiment(config);
    EXPECT_EQ(result.jobs_completed, 15) << ManagerName(manager);
    EXPECT_EQ(result.nodes_failed, 3) << ManagerName(manager);
  }
}

TEST(Failures, DeterministicUnderSeed) {
  auto config = SmallConfig(ManagerKind::kCustody);
  config.node_failures = 2;
  config.failure_start = 4.0;
  const auto a = RunExperiment(config);
  const auto b = RunExperiment(config);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.jct.mean, b.jct.mean);
}

TEST(Failures, LocalityDegradesGracefully) {
  auto config = SmallConfig(ManagerKind::kCustody);
  const auto calm = RunExperiment(config);
  config.node_failures = 4;
  config.failure_start = 3.0;
  config.failure_interval = 8.0;
  const auto chaos = RunExperiment(config);
  EXPECT_EQ(chaos.jobs_completed, 15);
  // Locality may drop under churn but must stay a recognizable system.
  EXPECT_GT(chaos.overall_task_locality_percent, 50.0);
  EXPECT_GE(calm.overall_task_locality_percent,
            chaos.overall_task_locality_percent - 1e-9);
}

TEST(Failures, WithCacheAndSpeculationSimultaneously) {
  auto config = SmallConfig(ManagerKind::kCustody);
  config.cache_mb_per_node = 2048.0;
  config.speculation = true;
  config.node_failures = 2;
  config.failure_start = 5.0;
  const auto result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 15);
}

// ---------- the failure primitive itself ---------------------------------------

TEST(InjectNodeFailure, ReReplicatesBlocksAndClearsState) {
  sim::Simulator sim;
  dfs::DfsConfig dfs_config;
  dfs_config.num_nodes = 6;
  dfs_config.default_replication = 2;
  dfs::Dfs dfs(dfs_config, Rng(3));
  const FileId file = dfs.write_file("/f", MB(512.0));

  cluster::WorkerConfig worker;
  worker.executors_per_node = 1;
  cluster::Cluster cluster(6, worker);
  cluster::PoolConfig pool_config;
  pool_config.expected_apps = 1;
  cluster::PoolManager manager(sim, cluster, pool_config);

  dfs::BlockCache cache(dfs, MB(1024.0));
  const BlockId block = dfs.blocks_of(file).front();
  const NodeId victim = dfs.locations(block).front();
  // Cache the block somewhere else, then also on the victim - only if the
  // victim does not store it on disk, so cache it on a non-replica node.
  NodeId other = NodeId::invalid();
  for (NodeId::value_type n = 0; n < 6; ++n) {
    if (!dfs.is_local(block, NodeId(n))) {
      other = NodeId(n);
      break;
    }
  }
  ASSERT_TRUE(other.valid());
  cache.insert(other, block);

  InjectNodeFailure(cluster, dfs, &cache, {}, manager, victim);

  EXPECT_FALSE(cluster.node_alive(victim));
  EXPECT_EQ(cluster.alive_executor_count(), 5u);
  // Every block that lived on the victim has been re-replicated: the
  // replication factor is preserved and the victim holds nothing.
  for (BlockId b : dfs.blocks_of(file)) {
    EXPECT_FALSE(dfs.is_local(b, victim));
    EXPECT_EQ(dfs.locations(b).size(), 2u);
  }
  // Cached copy elsewhere survives; allocator input excludes dead nodes.
  EXPECT_TRUE(cache.is_cached(other, block));
  for (const auto& idle : cluster.idle_executors()) {
    EXPECT_NE(idle.node, victim);
  }
  // Idempotent.
  InjectNodeFailure(cluster, dfs, &cache, {}, manager, victim);
  EXPECT_EQ(cluster.alive_executor_count(), 5u);
}

TEST(InjectNodeFailure, RefusesToKillLastNode) {
  sim::Simulator sim;
  dfs::DfsConfig dfs_config;
  dfs_config.num_nodes = 1;
  dfs_config.default_replication = 1;
  dfs::Dfs dfs(dfs_config, Rng(3));
  cluster::Cluster cluster(1, cluster::WorkerConfig{});
  cluster::PoolConfig pool_config;
  cluster::PoolManager manager(sim, cluster, pool_config);
  EXPECT_THROW(
      InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(0)),
      std::logic_error);
}

TEST(InjectNodeFailure, DeadNodeReinjectionIsSilentNoOp) {
  sim::Simulator sim;
  dfs::DfsConfig dfs_config;
  dfs_config.num_nodes = 4;
  dfs_config.default_replication = 2;
  dfs::Dfs dfs(dfs_config, Rng(7));
  dfs.write_file("/f", MB(256.0));
  cluster::Cluster cluster(4, cluster::WorkerConfig{});
  cluster::PoolConfig pool_config;
  cluster::PoolManager manager(sim, cluster, pool_config);
  obs::Tracer tracer(sim, {.enabled = true, .capacity = 64});

  InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(1), &tracer);
  ASSERT_FALSE(cluster.node_alive(NodeId(1)));
  // Re-injecting the same dead node: no state change, no second event.
  InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(1), &tracer);
  InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(1), &tracer);
  EXPECT_EQ(cluster.alive_nodes().size(), 3u);
  EXPECT_EQ(CountKind(tracer.buffer()->events(), obs::EventKind::kNodeFailure),
            1u);
}

TEST(InjectNodeFailure, TraceRecordsEachCrashExactlyOnce) {
  sim::Simulator sim;
  dfs::DfsConfig dfs_config;
  dfs_config.num_nodes = 5;
  dfs_config.default_replication = 2;
  dfs::Dfs dfs(dfs_config, Rng(9));
  dfs.write_file("/f", MB(1280.0));  // 10 blocks: every node holds replicas
  cluster::Cluster cluster(5, cluster::WorkerConfig{});
  cluster::PoolConfig pool_config;
  cluster::PoolManager manager(sim, cluster, pool_config);
  obs::Tracer tracer(sim, {.enabled = true, .capacity = 256});
  dfs.set_tracer(&tracer);  // re-replication churn records too

  InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(0), &tracer);
  InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(3), &tracer);
  const auto events = tracer.buffer()->events();
  EXPECT_EQ(CountKind(events, obs::EventKind::kNodeFailure), 2u);
  // Each crash names its victim.
  std::vector<std::int32_t> victims;
  for (const obs::TraceEvent& e : events) {
    if (e.kind == obs::EventKind::kNodeFailure) victims.push_back(e.node);
  }
  EXPECT_EQ(victims, (std::vector<std::int32_t>{0, 3}));
  // A node that lost replicas also shows re-replication churn.
  EXPECT_GT(CountKind(events, obs::EventKind::kReplicaLost), 0u);
}

TEST(InjectNodeFailure, LastNodeRefusalRecordsNoEvent) {
  sim::Simulator sim;
  dfs::DfsConfig dfs_config;
  dfs_config.num_nodes = 2;
  dfs_config.default_replication = 1;
  dfs::Dfs dfs(dfs_config, Rng(11));
  cluster::Cluster cluster(2, cluster::WorkerConfig{});
  cluster::PoolConfig pool_config;
  cluster::PoolManager manager(sim, cluster, pool_config);
  obs::Tracer tracer(sim, {.enabled = true, .capacity = 64});

  InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(0), &tracer);
  EXPECT_THROW(
      InjectNodeFailure(cluster, dfs, nullptr, {}, manager, NodeId(1), &tracer),
      std::logic_error);
  EXPECT_TRUE(cluster.node_alive(NodeId(1)));
  EXPECT_EQ(CountKind(tracer.buffer()->events(), obs::EventKind::kNodeFailure),
            1u);
}

TEST(Failures, TracedCrashCountMatchesNodesFailed) {
  auto config = SmallConfig(ManagerKind::kCustody);
  config.node_failures = 3;
  config.failure_start = 5.0;
  config.failure_interval = 10.0;
  config.tracing.enabled = true;
  const auto result = RunExperiment(config);
  ASSERT_NE(result.trace, nullptr);
  EXPECT_EQ(result.nodes_failed, 3);
  EXPECT_EQ(
      CountKind(result.trace->events(), obs::EventKind::kNodeFailure),
      static_cast<std::size_t>(result.nodes_failed));
}

TEST(ClusterFailNode, AssignOnDeadNodeThrows) {
  cluster::Cluster cluster(2, cluster::WorkerConfig{.executors_per_node = 1});
  cluster.fail_node(NodeId(0));
  EXPECT_THROW(cluster.assign(ExecutorId(0), AppId(0)), std::logic_error);
  cluster.assign(ExecutorId(1), AppId(0));  // alive node still fine
}

TEST(DfsFailNode, KeepsLastReplicaWhenNoTargetExists) {
  dfs::DfsConfig config;
  config.num_nodes = 2;
  config.default_replication = 2;  // both nodes hold every block
  dfs::Dfs dfs(config, Rng(5));
  const FileId f = dfs.write_file("/f", MB(128.0));
  const BlockId b = dfs.blocks_of(f).front();
  dfs.fail_node(NodeId(0), {NodeId(1)});
  // No third node to re-replicate to: node 1's copy remains, node 0's is
  // dropped (it was not the last).
  EXPECT_EQ(dfs.locations(b), (std::vector<NodeId>{NodeId(1)}));
}

}  // namespace
}  // namespace custody::workload
