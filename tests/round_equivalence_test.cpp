// Equivalence suite for the demand-driven allocation path (the PR-7
// contract): RunExperiment with allocator.demand_driven = true (persistent
// cluster idle index, AllocateOnIndex round views, skip triggers in the
// custody and offer managers, indexed picks in standalone/pool) must
// produce results field-for-field identical — exact double compare — to
// the seed's rebuild-per-round reference path, for every manager, every
// scheduler policy, and across many seeds, including cache / speculation /
// failure / steady-state variants that exercise the index's fail_node and
// release churn.
//
// Excluded fields, and why each is legitimately different:
//  * wall-clock diagnostics — measure real time, not simulated behaviour
//    (same contract as sweep_test.cpp / dispatch_equivalence_test.cpp);
//  * executors_scanned — the demand-driven path's whole point is scanning
//    fewer candidates (early-outs, skipped rounds); we assert <= instead;
//  * demand_apps / demanded_tasks / demands_saturated / rounds_skipped —
//    skipped rounds never compute their input sizes, so the reference path
//    (which always runs the allocator) accumulates more.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/harness.h"

namespace custody::workload {
namespace {

ExperimentConfig BaseConfig(ManagerKind manager, app::SchedulerKind kind,
                            std::uint64_t seed) {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.executors_per_node = 2;
  config.manager = manager;
  config.kinds = {WorkloadKind::kWordCount, WorkloadKind::kSort};
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 4;
  config.trace.files_per_kind = 3;
  config.scheduler.kind = kind;
  config.seed = seed;
  return config;
}

void ExpectSummariesIdentical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.p25, b.p25);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p75, b.p75);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.max, b.max);
}

/// Exact comparison of every deterministic field of two results (see the
/// header comment for the excluded diagnostics).
void ExpectResultsIdentical(const ExperimentResult& demand_driven,
                            const ExperimentResult& reference) {
  const ExperimentResult& a = demand_driven;
  const ExperimentResult& b = reference;
  EXPECT_EQ(a.manager_name, b.manager_name);
  {
    SCOPED_TRACE("job_locality");
    ExpectSummariesIdentical(a.job_locality, b.job_locality);
  }
  EXPECT_EQ(a.overall_task_locality_percent, b.overall_task_locality_percent);
  EXPECT_EQ(a.local_job_percent, b.local_job_percent);
  {
    SCOPED_TRACE("jct");
    ExpectSummariesIdentical(a.jct, b.jct);
  }
  {
    SCOPED_TRACE("input_stage");
    ExpectSummariesIdentical(a.input_stage, b.input_stage);
  }
  {
    SCOPED_TRACE("sched_delay");
    ExpectSummariesIdentical(a.sched_delay, b.sched_delay);
  }
  ASSERT_EQ(a.per_app_local_job_fraction.size(),
            b.per_app_local_job_fraction.size());
  for (std::size_t i = 0; i < a.per_app_local_job_fraction.size(); ++i) {
    EXPECT_EQ(a.per_app_local_job_fraction[i], b.per_app_local_job_fraction[i])
        << "per_app_local_job_fraction[" << i << "]";
  }
  EXPECT_EQ(a.manager_stats.allocation_rounds,
            b.manager_stats.allocation_rounds);
  EXPECT_EQ(a.manager_stats.executors_granted,
            b.manager_stats.executors_granted);
  EXPECT_EQ(a.manager_stats.executors_released,
            b.manager_stats.executors_released);
  EXPECT_EQ(a.manager_stats.offers_made, b.manager_stats.offers_made);
  EXPECT_EQ(a.manager_stats.offers_rejected, b.manager_stats.offers_rejected);
  // The demand-driven path must do no MORE candidate work than the
  // reference — strictly less whenever any round skipped or early-outed.
  EXPECT_LE(a.manager_stats.executors_scanned,
            b.manager_stats.executors_scanned);
  EXPECT_EQ(a.manager_stats.apps_considered, b.manager_stats.apps_considered);
  EXPECT_EQ(a.round_wall.count, b.round_wall.count);
  EXPECT_EQ(a.round_yield_fraction, b.round_yield_fraction);
  EXPECT_EQ(a.net_stats.recomputes_requested, b.net_stats.recomputes_requested);
  EXPECT_EQ(a.net_stats.recomputes_run, b.net_stats.recomputes_run);
  EXPECT_EQ(a.net_stats.recomputes_batched, b.net_stats.recomputes_batched);
  EXPECT_EQ(a.net_stats.flows_scanned, b.net_stats.flows_scanned);
  EXPECT_EQ(a.net_stats.links_scanned, b.net_stats.links_scanned);
  EXPECT_EQ(a.net_stats.rounds, b.net_stats.rounds);
  EXPECT_EQ(a.net_bytes_delivered, b.net_bytes_delivered);
  EXPECT_EQ(a.cache_insertions, b.cache_insertions);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.speculative_wins, b.speculative_wins);
  EXPECT_EQ(a.nodes_failed, b.nodes_failed);
  EXPECT_EQ(a.launches_local, b.launches_local);
  EXPECT_EQ(a.launches_covered_busy, b.launches_covered_busy);
  EXPECT_EQ(a.launches_uncovered, b.launches_uncovered);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_retired, b.jobs_retired);
  EXPECT_EQ(a.peak_live_tasks, b.peak_live_tasks);
  // The reference path never skips.
  EXPECT_EQ(b.manager_stats.rounds_skipped, 0u);
}

/// Runs `config` once demand-driven and once on the rebuild-per-round
/// reference and demands bit-identical simulated behaviour.
void ExpectPathsAgree(ExperimentConfig config) {
  config.allocator.demand_driven = true;
  const ExperimentResult demand_driven = RunExperiment(config);
  config.allocator.demand_driven = false;
  const ExperimentResult reference = RunExperiment(config);
  ExpectResultsIdentical(demand_driven, reference);
}

constexpr app::SchedulerKind kKinds[] = {app::SchedulerKind::kDelay,
                                         app::SchedulerKind::kLocalityPreferred,
                                         app::SchedulerKind::kFifo};

const char* KindName(app::SchedulerKind kind) {
  switch (kind) {
    case app::SchedulerKind::kDelay:
      return "delay";
    case app::SchedulerKind::kLocalityPreferred:
      return "locality";
    case app::SchedulerKind::kFifo:
      return "fifo";
  }
  return "?";
}

/// Every (manager, scheduler kind) cell over `seeds_per_cell` distinct
/// seeds.  Seeds are disjoint across cells so the suite as a whole covers
/// kinds * seeds_per_cell * 4 distinct seeds.
void SweepManager(ManagerKind manager, std::uint64_t seed_base,
                  int seeds_per_cell) {
  std::uint64_t seed = seed_base;
  for (const app::SchedulerKind kind : kKinds) {
    for (int i = 0; i < seeds_per_cell; ++i, ++seed) {
      SCOPED_TRACE(std::string("kind=") + KindName(kind) +
                   " seed=" + std::to_string(seed));
      ExpectPathsAgree(BaseConfig(manager, kind, seed));
    }
  }
}

// 4 managers x 3 kinds x 4 seeds = 48 distinct seeds; the feature variants
// below add 14 more (62 total, all distinct).
TEST(RoundEquivalence, CustodyAllKindsManySeeds) {
  SweepManager(ManagerKind::kCustody, 1100, 4);
}

TEST(RoundEquivalence, StandaloneAllKindsManySeeds) {
  SweepManager(ManagerKind::kStandalone, 1200, 4);
}

TEST(RoundEquivalence, PoolAllKindsManySeeds) {
  SweepManager(ManagerKind::kPool, 1300, 4);
}

TEST(RoundEquivalence, OfferAllKindsManySeeds) {
  SweepManager(ManagerKind::kOffer, 1400, 4);
}

// Node failures remove executors from the persistent index (allocated and
// idle alike) — the one mutation path that is neither a grant nor a
// release.  Speculation adds extra release churn.
TEST(RoundEquivalence, FailuresAndSpeculationAgree) {
  for (const ManagerKind manager :
       {ManagerKind::kCustody, ManagerKind::kPool}) {
    for (std::uint64_t seed = 1500; seed < 1503; ++seed) {
      SCOPED_TRACE("manager=" + std::to_string(static_cast<int>(manager)) +
                   " seed=" + std::to_string(seed));
      ExperimentConfig config =
          BaseConfig(manager, app::SchedulerKind::kDelay, seed);
      config.node_failures = 2;
      config.failure_start = 10.0;
      config.failure_interval = 15.0;
      config.slow_node_fraction = 0.2;
      config.speculation = true;
      ExpectPathsAgree(config);
    }
  }
}

// The block cache changes the locations the demand-driven candidate
// enumeration walks (cached replicas join block->node lookups).
TEST(RoundEquivalence, CachedWorkloadAgrees) {
  for (std::uint64_t seed = 1600; seed < 1604; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExperimentConfig config =
        BaseConfig(ManagerKind::kCustody, app::SchedulerKind::kDelay, seed);
    config.cache_mb_per_node = 256.0;
    config.trace.zipf_skew = 1.2;
    ExpectPathsAgree(config);
  }
}

// Steady-state mode: lazy submission stream, job retirement, streaming
// metrics — the long-horizon regime the skip trigger exists for.  Released
// executors re-enter the index millions of times at scale; here a smaller
// stream still exercises the same add/remove cycling.
TEST(RoundEquivalence, SteadyStateStreamAgrees) {
  for (const ManagerKind manager :
       {ManagerKind::kCustody, ManagerKind::kOffer}) {
    for (std::uint64_t seed = 1700; seed < 1702; ++seed) {
      SCOPED_TRACE("manager=" + std::to_string(static_cast<int>(manager)) +
                   " seed=" + std::to_string(seed));
      ExperimentConfig config =
          BaseConfig(manager, app::SchedulerKind::kDelay, seed);
      config.trace.jobs_per_app = 30;
      config.steady.enabled = true;
      config.steady.warmup = 20.0;
      ExpectPathsAgree(config);
    }
  }
}

// The custody skip trigger must actually fire on a plain workload (the
// equivalence above would pass vacuously if it never did): between a job's
// last release and the next submission, rounds find every app at budget.
TEST(RoundEquivalence, SkipTriggerFiresOnPlainWorkload) {
  ExperimentConfig config =
      BaseConfig(ManagerKind::kCustody, app::SchedulerKind::kDelay, 1800);
  config.allocator.demand_driven = true;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.manager_stats.rounds_skipped, 0u);
  EXPECT_GT(result.manager_stats.allocation_rounds,
            result.manager_stats.rounds_skipped);
}

}  // namespace
}  // namespace custody::workload
