// Tests for the in-application task schedulers: delay scheduling semantics,
// locality-preferred and FIFO variants.  Every pick test runs twice — once
// against the seed full-scan reference path and once against the
// ReadyTaskIndex-backed path — and must behave identically in both.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "app/ready_index.h"
#include "app/scheduler.h"
#include "common/units.h"

namespace custody::app {
namespace {

using custody::units::MB;

/// Builds a self-contained scheduling scenario: a DFS with chosen block
/// locations and a single job whose input tasks read those blocks.
class SchedulerFixture {
 public:
  SchedulerFixture() : dfs_(MakeConfig(), Rng(1)) {}

  BlockId add_block(std::vector<NodeId> nodes) {
    const FileId f =
        dfs_.write_file("/b" + std::to_string(next_file_++), MB(1.0), 1);
    const BlockId b = dfs_.blocks_of(f).front();
    // Rewrite the replica set to the requested nodes.
    auto& nn = const_cast<dfs::NameNode&>(dfs_.namenode());
    for (NodeId n : nodes) {
      if (!nn.is_local(b, n)) nn.add_replica(b, n);
    }
    for (NodeId existing : std::vector<NodeId>(nn.locations(b))) {
      if (std::find(nodes.begin(), nodes.end(), existing) == nodes.end()) {
        nn.remove_replica(b, existing);
      }
    }
    return b;
  }

  Job& add_job() {
    jobs_storage_.push_back(std::make_unique<Job>());
    Job& j = *jobs_storage_.back();
    j.id = JobId(static_cast<JobId::value_type>(jobs_storage_.size()));
    j.stages.push_back(Stage{});
    jobs_.push_back(&j);
    return j;
  }

  Task& add_input_task(Job& j, BlockId block, TaskState state) {
    Task t;
    t.id = TaskId(next_task_++);
    t.job = j.id;
    t.stage = 0;
    t.block = block;
    t.state = state;
    j.stages.front().tasks.push_back(t.id);
    j.input_tasks += 1;
    auto [it, inserted] = tasks_.emplace(t.id, t);
    return it->second;
  }

  Task& add_downstream_task(Job& j, TaskState state) {
    if (j.stages.size() < 2) {
      Stage s;
      s.index = 1;
      j.stages.push_back(s);
    }
    Task t;
    t.id = TaskId(next_task_++);
    t.job = j.id;
    t.stage = 1;
    t.state = state;
    j.stages.back().tasks.push_back(t.id);
    auto [it, inserted] = tasks_.emplace(t.id, t);
    return it->second;
  }

  const dfs::Dfs& dfs() const { return dfs_; }
  const TaskTable& tasks() const { return tasks_; }
  std::vector<Job*>& jobs() { return jobs_; }

 private:
  static dfs::DfsConfig MakeConfig() {
    dfs::DfsConfig c;
    c.num_nodes = 8;
    c.default_replication = 1;
    return c;
  }

  dfs::Dfs dfs_;
  TaskTable tasks_;
  std::vector<std::unique_ptr<Job>> jobs_storage_;
  std::vector<Job*> jobs_;
  TaskId::value_type next_task_ = 0;
  int next_file_ = 0;
};

SchedulerConfig Delay(double wait = 3.0) {
  return {SchedulerKind::kDelay, wait};
}

/// Parametrized over the dispatch path: false = reference scan, true =
/// ReadyTaskIndex lookups.  make() must be called after the scenario is
/// built — it snapshots the ready tasks into the index.
class SchedulerPath : public testing::TestWithParam<bool> {
 protected:
  TaskScheduler make(SchedulerConfig cfg) {
    cfg.indexed = GetParam();
    TaskScheduler sched(cfg, f.dfs());
    if (cfg.indexed) {
      index_ = std::make_unique<ReadyTaskIndex>(f.dfs());
      for (const auto& [id, t] : f.tasks()) {
        if (t.state == TaskState::kReady) index_->task_ready(t);
      }
      sched.attach_index(index_.get());
    }
    return sched;
  }

  SchedulerFixture f;

 private:
  std::unique_ptr<ReadyTaskIndex> index_;
};

INSTANTIATE_TEST_SUITE_P(Paths, SchedulerPath, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "indexed" : "reference";
                         });

TEST_P(SchedulerPath, DelayPrefersLocalInputTask) {
  Job& j = f.add_job();
  const BlockId remote = f.add_block({NodeId(5)});
  const BlockId local = f.add_block({NodeId(1)});
  f.add_input_task(j, remote, TaskState::kReady);
  Task& local_task = f.add_input_task(j, local, TaskState::kReady);

  TaskScheduler sched = make(Delay());
  std::optional<SimTime> retry;
  const auto pick = sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->task, local_task.id);
  EXPECT_TRUE(pick->local);
}

TEST_P(SchedulerPath, DelayWaitsBeforeGoingRemote) {
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(5)}), TaskState::kReady);

  TaskScheduler sched = make(Delay(3.0));
  std::optional<SimTime> retry;
  // First ask at t=0: nothing local -> the job starts its wait.
  EXPECT_FALSE(sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry));
  EXPECT_TRUE(j.waiting_since_set());
  ASSERT_TRUE(retry.has_value());
  EXPECT_DOUBLE_EQ(*retry, 3.0);
  // Still within the wait: refuse again.
  EXPECT_FALSE(sched.pick(NodeId(1), 2.9, f.jobs(), f.tasks(), retry));
  // Wait expired: accept the remote slot.
  const auto pick = sched.pick(NodeId(1), 3.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_FALSE(pick->local);
}

TEST_P(SchedulerPath, DelayWaitExpiryExactTimeDoesNotSpin) {
  // Regression: the retry event fires at exactly wait_start + wait; the
  // comparison must treat that instant as expired despite fp rounding.
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(5)}), TaskState::kReady);
  TaskScheduler sched = make(Delay(3.0));
  std::optional<SimTime> retry;
  const double start = 9.133414204015;  // awkward binary representation
  EXPECT_FALSE(sched.pick(NodeId(1), start, f.jobs(), f.tasks(), retry));
  ASSERT_TRUE(retry.has_value());
  const auto pick =
      sched.pick(NodeId(1), *retry, f.jobs(), f.tasks(), retry);
  EXPECT_TRUE(pick.has_value());
}

TEST_P(SchedulerPath, DelayWaitExpiryStillFiresAtSteadyStateHorizons) {
  // Regression for long horizons: one ulp of the clock at t ~ 1e9 is
  // ~2.4e-7 s, so `(wait_start + wait) - wait_start` can round short of
  // `wait` by far more than the historical absolute 1e-9 tolerance.  With
  // that constant the retry event at `expires` refused the pick and
  // re-armed itself forever; TimeEpsilonAt scales with the clock and must
  // treat the retry instant as expired.
  Job& billions = f.add_job();
  f.add_input_task(billions, f.add_block({NodeId(5)}), TaskState::kReady);
  Job& trillions = f.add_job();
  f.add_input_task(trillions, f.add_block({NodeId(5)}), TaskState::kReady);
  const struct {
    Job* job;
    double start;
    double wait;
  } cases[] = {
      {&billions, 1400734916.308764, 0.3},    // rounds ~4.8e-8 short
      {&trillions, 1364094544598.6082, 3.7},  // rounds ~4.9e-5 short
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.start);
    TaskScheduler sched = make(Delay(c.wait));
    std::vector<Job*> only{c.job};
    std::optional<SimTime> retry;
    EXPECT_FALSE(sched.pick(NodeId(1), c.start, only, f.tasks(), retry));
    ASSERT_TRUE(retry.has_value());
    // Confirm the scenario bites: the retry instant minus the wait start is
    // genuinely short of the wait by more than the old absolute epsilon.
    ASSERT_LT(*retry - c.start, c.wait - 1e-9);
    const auto pick = sched.pick(NodeId(1), *retry, only, f.tasks(), retry);
    EXPECT_TRUE(pick.has_value());
    EXPECT_FALSE(pick->local);
  }
}

TEST(DelayScheduler, LocalLaunchResetsWait) {
  SchedulerFixture f;
  Job& j = f.add_job();
  Task& t = f.add_input_task(j, f.add_block({NodeId(1)}), TaskState::kReady);
  j.wait_start = 5.0;
  t.local = true;
  TaskScheduler sched(Delay(), f.dfs());
  sched.on_launched(j, t);
  EXPECT_FALSE(j.waiting_since_set());
}

TEST(DelayScheduler, NonLocalLaunchKeepsExpiredTimer) {
  SchedulerFixture f;
  Job& j = f.add_job();
  Task& t = f.add_input_task(j, f.add_block({NodeId(5)}), TaskState::kReady);
  j.wait_start = 5.0;
  t.local = false;
  TaskScheduler sched(Delay(), f.dfs());
  sched.on_launched(j, t);
  // The expired timer persists so follow-up tasks launch without re-waiting.
  EXPECT_TRUE(j.waiting_since_set());
}

TEST_P(SchedulerPath, DelayDownstreamTasksLaunchAnywhere) {
  Job& j = f.add_job();
  Task& reduce = f.add_downstream_task(j, TaskState::kReady);
  TaskScheduler sched = make(Delay());
  std::optional<SimTime> retry;
  const auto pick = sched.pick(NodeId(7), 0.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->task, reduce.id);
}

TEST_P(SchedulerPath, DelaySkipsJobButServesNextOne) {
  Job& first = f.add_job();
  f.add_input_task(first, f.add_block({NodeId(5)}), TaskState::kReady);
  Job& second = f.add_job();
  Task& local = f.add_input_task(second, f.add_block({NodeId(1)}),
                                 TaskState::kReady);
  TaskScheduler sched = make(Delay());
  std::optional<SimTime> retry;
  const auto pick = sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->task, local.id);  // job 1 skipped, job 2 local served
  EXPECT_TRUE(first.waiting_since_set());
}

TEST_P(SchedulerPath, DelayIgnoresNonReadyTasks) {
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(1)}), TaskState::kBlocked);
  f.add_input_task(j, f.add_block({NodeId(1)}), TaskState::kRunning);
  f.add_input_task(j, f.add_block({NodeId(1)}), TaskState::kFinished);
  TaskScheduler sched = make(Delay());
  std::optional<SimTime> retry;
  EXPECT_FALSE(sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry));
  EXPECT_FALSE(retry.has_value());  // nothing will become pickable by time
}

TEST_P(SchedulerPath, LocalityPreferredNeverWaits) {
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(5)}), TaskState::kReady);
  TaskScheduler sched = make({SchedulerKind::kLocalityPreferred, 3.0});
  std::optional<SimTime> retry;
  const auto pick = sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_FALSE(pick->local);
  EXPECT_FALSE(j.waiting_since_set());
}

TEST_P(SchedulerPath, LocalityPreferredStillPrefersLocal) {
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(5)}), TaskState::kReady);
  Task& local = f.add_input_task(j, f.add_block({NodeId(1)}),
                                 TaskState::kReady);
  TaskScheduler sched = make({SchedulerKind::kLocalityPreferred, 0.0});
  std::optional<SimTime> retry;
  const auto pick = sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->task, local.id);
}

TEST_P(SchedulerPath, FifoIgnoresLocalityEntirely) {
  Job& j = f.add_job();
  Task& first = f.add_input_task(j, f.add_block({NodeId(5)}),
                                 TaskState::kReady);
  f.add_input_task(j, f.add_block({NodeId(1)}), TaskState::kReady);
  TaskScheduler sched = make({SchedulerKind::kFifo, 3.0});
  std::optional<SimTime> retry;
  const auto pick = sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->task, first.id);  // stage order, not locality
  EXPECT_FALSE(pick->local);
}

TEST_P(SchedulerPath, FifoStillReportsLocalityForMetrics) {
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(1)}), TaskState::kReady);
  TaskScheduler sched = make({SchedulerKind::kFifo, 0.0});
  std::optional<SimTime> retry;
  const auto pick = sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(pick->local);  // happened to be local
}

TEST_P(SchedulerPath, HasLocalReadyInput) {
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(2)}), TaskState::kReady);
  TaskScheduler sched = make(Delay());
  EXPECT_TRUE(sched.has_local_ready_input(j, NodeId(2), f.tasks()));
  EXPECT_FALSE(sched.has_local_ready_input(j, NodeId(3), f.tasks()));
}

TEST_P(SchedulerPath, ZeroWaitDelayActsLikeLocalityPreferred) {
  Job& j = f.add_job();
  f.add_input_task(j, f.add_block({NodeId(5)}), TaskState::kReady);
  TaskScheduler sched = make(Delay(0.0));
  std::optional<SimTime> retry;
  EXPECT_TRUE(sched.pick(NodeId(1), 0.0, f.jobs(), f.tasks(), retry));
}

}  // namespace
}  // namespace custody::app
