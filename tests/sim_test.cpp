// Unit tests for the discrete-event engine: ordering, cancellation,
// re-entrancy, run_until semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace custody::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(2.0, [&] { fired.push_back(2); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(3.0, [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelDropsEvent) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.push(1.0, [&] { fired = true; });
  h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOneOfMany) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1.0, [&] { fired.push_back(1); });
  EventHandle h = q.push(2.0, [&] { fired.push_back(2); });
  q.push(3.0, [&] { fired.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  EventHandle h = q.push(1.0, [] {});
  q.push(5.0, [] {});
  h.cancel();
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventHandle, DefaultInvalid) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // no-op, must not crash
  EXPECT_FALSE(h.cancelled());
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, ZeroDelayRunsAtSameTime) {
  Simulator sim;
  sim.schedule(1.0, [&] {
    sim.schedule(0.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 1.0); });
  });
  sim.run();
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, RejectsNegativeDelay) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsPastAbsoluteTime) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  sim.schedule(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancellationFromInsideEvent) {
  Simulator sim;
  bool late_fired = false;
  EventHandle late = sim.schedule(2.0, [&] { late_fired = true; });
  sim.schedule(1.0, [&] { late.cancel(); });
  sim.run();
  EXPECT_FALSE(late_fired);
}

TEST(Simulator, ManyEventsDeterministicCount) {
  Simulator sim;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule(static_cast<double>(i % 17) * 0.1, [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_processed(), 1000u);
}

// ---------- post-event hooks (same-timestamp batching support) -------------

TEST(Simulator, PostEventHookRunsBetweenEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.add_post_event_hook([&] { order.push_back(0); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  // Hook fires before the first pop, between events, and after the last one.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 2, 0}));
}

TEST(Simulator, PostEventHookMayScheduleWork) {
  // A hook that schedules an event must keep the run alive: the empty-queue
  // check happens after hooks run, so deferred work armed by a hook (e.g.
  // the network's batched completion event) is never dropped.
  Simulator sim;
  bool armed = false;
  bool fired = false;
  sim.add_post_event_hook([&] {
    if (!armed) {
      armed = true;
      sim.schedule(5.0, [&] { fired = true; });
    }
  });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_NEAR(sim.now(), 5.0, 1e-12);
}

TEST(Simulator, RemovedHookStopsFiring) {
  Simulator sim;
  int calls = 0;
  const Simulator::HookId id = sim.add_post_event_hook([&] { ++calls; });
  sim.schedule(1.0, [] {});
  sim.run();
  const int before = calls;
  EXPECT_GT(before, 0);
  sim.remove_post_event_hook(id);
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_EQ(calls, before);
}

TEST(Simulator, HookSeesPreAdvanceClock) {
  // Hooks flush state *before* the clock moves to the next event's time, so
  // a flush always accounts progress at the timestamp the changes happened.
  Simulator sim;
  std::vector<double> hook_times;
  sim.schedule(1.0, [] {});
  sim.schedule(3.0, [] {});
  sim.add_post_event_hook([&] { hook_times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(hook_times, (std::vector<double>{0.0, 1.0, 3.0}));
}

}  // namespace
}  // namespace custody::sim
