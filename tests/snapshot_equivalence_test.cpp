// The snapshot/restore contract of the full stack (the checkpoint PR's
// tentpole): run-to-T, save(), restore() into a FRESH LiveRun over the
// same substrate snapshot + manager, run-to-end must be field-for-field
// bit-identical — exact double compare, events_processed included — to the
// uninterrupted run, for every manager, across many seeds and snapshot
// points (including mid-failure-wave), with caches, speculation, slow
// nodes and failure injection all live.
//
// Also covered here:
//  * fork-twice: two restores of one snapshot are identical; a what-if
//    fork (extra injected failure in one) diverges but still completes;
//  * steady-state lazy-stream resume (the SUBS mode-1 pump re-arm);
//  * RunOnSnapshot's checkpoint.every / checkpoint.resume_path plumbing,
//    including the JSON manifest sidecar;
//  * config-hash pinning: restore onto a different manager or config
//    fails with snap::SnapshotError, never a silent divergence;
//  * ValidateConfig rejection of unsound checkpoint knobs;
//  * RNG and SubmissionStream draw sequences pinned across restore;
//  * corrupt-payload fuzzing with a recomputed checksum: restore must
//    throw or succeed, never crash (the ASan/UBSan CI job runs this).
//
// Excluded fields: wall-clock diagnostics only (allocation_wall_seconds,
// last_round_wall_seconds, net_stats.wall_seconds, round_wall's duration
// stats) — they measure real time, not simulated behaviour.  round_wall's
// count and every other field must match exactly.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/snapshot.h"
#include "workload/harness.h"

namespace custody::workload {
namespace {

// Small but multi-layer: block cache, speculation, slow nodes and a
// three-crash failure wave (t = 10, 18, 26) are all live, so a snapshot
// exercises every layer's dynamic state.
ExperimentConfig BaseConfig(ManagerKind manager, std::uint64_t seed) {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.executors_per_node = 2;
  config.manager = manager;
  config.kinds = {WorkloadKind::kWordCount, WorkloadKind::kSort};
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 4;
  config.trace.files_per_kind = 3;
  config.cache_mb_per_node = 256.0;
  config.speculation = true;
  config.slow_node_fraction = 0.15;
  config.node_failures = 3;
  config.failure_start = 10.0;
  config.failure_interval = 8.0;
  config.seed = seed;
  return config;
}

void ExpectSummariesIdentical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.p25, b.p25);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p75, b.p75);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.max, b.max);
}

/// Exact comparison of every deterministic result field (wall-clock
/// diagnostics excluded, see the header comment).  Unlike the
/// demand-driven equivalence suite, restore equivalence is FULL identity:
/// even the work counters (executors_scanned, rounds_skipped, demand
/// sizes) must match, because a restored run replays the exact same
/// decisions.
void ExpectResultsIdentical(const ExperimentResult& a,
                            const ExperimentResult& b) {
  EXPECT_EQ(a.manager_name, b.manager_name);
  {
    SCOPED_TRACE("job_locality");
    ExpectSummariesIdentical(a.job_locality, b.job_locality);
  }
  EXPECT_EQ(a.overall_task_locality_percent, b.overall_task_locality_percent);
  EXPECT_EQ(a.local_job_percent, b.local_job_percent);
  {
    SCOPED_TRACE("jct");
    ExpectSummariesIdentical(a.jct, b.jct);
  }
  {
    SCOPED_TRACE("input_stage");
    ExpectSummariesIdentical(a.input_stage, b.input_stage);
  }
  {
    SCOPED_TRACE("sched_delay");
    ExpectSummariesIdentical(a.sched_delay, b.sched_delay);
  }
  ASSERT_EQ(a.per_app_local_job_fraction.size(),
            b.per_app_local_job_fraction.size());
  for (std::size_t i = 0; i < a.per_app_local_job_fraction.size(); ++i) {
    EXPECT_EQ(a.per_app_local_job_fraction[i], b.per_app_local_job_fraction[i])
        << "per_app_local_job_fraction[" << i << "]";
  }
  const cluster::ManagerStats& ma = a.manager_stats;
  const cluster::ManagerStats& mb = b.manager_stats;
  EXPECT_EQ(ma.allocation_rounds, mb.allocation_rounds);
  EXPECT_EQ(ma.executors_granted, mb.executors_granted);
  EXPECT_EQ(ma.executors_released, mb.executors_released);
  EXPECT_EQ(ma.offers_made, mb.offers_made);
  EXPECT_EQ(ma.offers_rejected, mb.offers_rejected);
  EXPECT_EQ(ma.executors_scanned, mb.executors_scanned);
  EXPECT_EQ(ma.apps_considered, mb.apps_considered);
  EXPECT_EQ(ma.rounds_skipped, mb.rounds_skipped);
  EXPECT_EQ(ma.demand_apps, mb.demand_apps);
  EXPECT_EQ(ma.demanded_tasks, mb.demanded_tasks);
  EXPECT_EQ(ma.demands_saturated, mb.demands_saturated);
  EXPECT_EQ(a.round_wall.count, b.round_wall.count);
  EXPECT_EQ(a.round_yield_fraction, b.round_yield_fraction);
  EXPECT_EQ(a.net_stats.recomputes_requested, b.net_stats.recomputes_requested);
  EXPECT_EQ(a.net_stats.recomputes_run, b.net_stats.recomputes_run);
  EXPECT_EQ(a.net_stats.recomputes_batched, b.net_stats.recomputes_batched);
  EXPECT_EQ(a.net_stats.flows_scanned, b.net_stats.flows_scanned);
  EXPECT_EQ(a.net_stats.links_scanned, b.net_stats.links_scanned);
  EXPECT_EQ(a.net_stats.rounds, b.net_stats.rounds);
  EXPECT_EQ(a.net_bytes_delivered, b.net_bytes_delivered);
  EXPECT_EQ(a.cache_insertions, b.cache_insertions);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.speculative_wins, b.speculative_wins);
  EXPECT_EQ(a.nodes_failed, b.nodes_failed);
  EXPECT_EQ(a.launches_local, b.launches_local);
  EXPECT_EQ(a.launches_covered_busy, b.launches_covered_busy);
  EXPECT_EQ(a.launches_uncovered, b.launches_uncovered);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_retired, b.jobs_retired);
  EXPECT_EQ(a.peak_live_tasks, b.peak_live_tasks);
}

/// Run to `T`, snapshot, destroy the run, restore into a FRESH LiveRun,
/// finish, collect.  The destroyed first run guarantees nothing leaks
/// between the two halves except the snapshot bytes.
ExperimentResult RunWithRestore(const SubstrateSnapshot& snapshot,
                                ManagerKind manager, SimTime snap_at) {
  std::vector<std::uint8_t> bytes;
  {
    LiveRun first(snapshot, manager);
    first.run_until(snap_at);
    bytes = first.save();
  }
  LiveRun second(snapshot, manager);
  second.restore(bytes);
  second.run();
  return second.collect();
}

// Snapshot points: before the failure wave, inside it (between the t=10
// and t=18 crashes), and after it.
constexpr SimTime kSnapshotPoints[] = {5.0, 14.0, 30.0};

void SweepManager(ManagerKind manager, std::uint64_t seed_base,
                  int num_seeds) {
  for (std::uint64_t seed = seed_base;
       seed < seed_base + static_cast<std::uint64_t>(num_seeds); ++seed) {
    const SubstrateSnapshot snapshot =
        SubstrateSnapshot::Build(BaseConfig(manager, seed));
    const ExperimentResult straight = RunOnSnapshot(snapshot, manager);
    // The failure wave must actually have fired, or the mid-wave snapshot
    // point is vacuous.
    ASSERT_EQ(straight.nodes_failed, 3) << "seed=" << seed;
    for (const SimTime at : kSnapshotPoints) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " snap_at=" + std::to_string(at));
      ExpectResultsIdentical(RunWithRestore(snapshot, manager, at), straight);
    }
  }
}

// 4 managers x 20 seeds x 3 snapshot points, all seeds distinct.
TEST(SnapshotEquivalence, CustodyManySeedsAllPoints) {
  SweepManager(ManagerKind::kCustody, 2000, 20);
}

TEST(SnapshotEquivalence, StandaloneManySeedsAllPoints) {
  SweepManager(ManagerKind::kStandalone, 2100, 20);
}

TEST(SnapshotEquivalence, PoolManySeedsAllPoints) {
  SweepManager(ManagerKind::kPool, 2200, 20);
}

TEST(SnapshotEquivalence, OfferManySeedsAllPoints) {
  SweepManager(ManagerKind::kOffer, 2300, 20);
}

// The pre-run boundary is a valid snapshot point too: save immediately
// after construction, before a single event fires.
TEST(SnapshotEquivalence, SaveAtConstructionRoundTrips) {
  const SubstrateSnapshot snapshot =
      SubstrateSnapshot::Build(BaseConfig(ManagerKind::kCustody, 2500));
  const ExperimentResult straight =
      RunOnSnapshot(snapshot, ManagerKind::kCustody);
  std::vector<std::uint8_t> bytes;
  {
    LiveRun first(snapshot, ManagerKind::kCustody);
    bytes = first.save();
  }
  LiveRun second(snapshot, ManagerKind::kCustody);
  second.restore(bytes);
  second.run();
  ExpectResultsIdentical(second.collect(), straight);
}

// Forking: one snapshot restored into two independent runs.  Untouched,
// the twins are identical; perturbing one (what-if: extra node crashes)
// diverges it while both still complete every job.
TEST(SnapshotEquivalence, ForkTwiceIsIdenticalAndWhatIfDiverges) {
  const SubstrateSnapshot snapshot =
      SubstrateSnapshot::Build(BaseConfig(ManagerKind::kCustody, 2510));
  std::vector<std::uint8_t> bytes;
  {
    LiveRun base(snapshot, ManagerKind::kCustody);
    base.run_until(12.0);  // one scheduled crash already happened
    bytes = base.save();
  }

  LiveRun fork_a(snapshot, ManagerKind::kCustody);
  fork_a.restore(bytes);
  fork_a.run();
  const ExperimentResult a = fork_a.collect();

  LiveRun fork_b(snapshot, ManagerKind::kCustody);
  fork_b.restore(bytes);
  fork_b.run();
  const ExperimentResult b = fork_b.collect();
  {
    SCOPED_TRACE("fork twice, untouched");
    ExpectResultsIdentical(a, b);
  }

  // What-if: crash three extra nodes in one fork right after restore.  At
  // most one of the chosen ids is already dead, so at least two extra
  // crashes land.
  LiveRun fork_c(snapshot, ManagerKind::kCustody);
  fork_c.restore(bytes);
  fork_c.inject_failure(NodeId(0));
  fork_c.inject_failure(NodeId(1));
  fork_c.inject_failure(NodeId(2));
  fork_c.run();
  const ExperimentResult c = fork_c.collect();
  EXPECT_GT(c.nodes_failed, a.nodes_failed);
  // The perturbed universe still completes the full workload.
  EXPECT_EQ(c.jobs_completed, a.jobs_completed);
}

// Steady-state lazy stream: the pump's (time, seq) descriptor and the
// stream's per-app draw state must survive restore (SUBS mode 1).
TEST(SnapshotEquivalence, SteadyStateStreamResumes) {
  for (std::uint64_t seed = 2520; seed < 2523; ++seed) {
    ExperimentConfig config = BaseConfig(ManagerKind::kCustody, seed);
    config.trace.jobs_per_app = 12;
    config.steady.enabled = true;
    config.steady.warmup = 20.0;
    const SubstrateSnapshot snapshot = SubstrateSnapshot::Build(config);
    const ExperimentResult straight =
        RunOnSnapshot(snapshot, ManagerKind::kCustody);
    for (const SimTime at : {14.0, 60.0}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " snap_at=" + std::to_string(at));
      ExpectResultsIdentical(
          RunWithRestore(snapshot, ManagerKind::kCustody, at), straight);
    }
  }
}

// RunOnSnapshot's checkpoint plumbing: periodic checkpoints do not perturb
// the run, files + JSON manifests appear, and resuming from a mid-run
// checkpoint finishes with identical summaries.
TEST(SnapshotEquivalence, CheckpointEveryAndResumeMatchStraightRun) {
  const std::string dir = ::testing::TempDir();
  ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2530);
  const SubstrateSnapshot plain = SubstrateSnapshot::Build(config);
  const ExperimentResult straight =
      RunOnSnapshot(plain, ManagerKind::kCustody);

  config.checkpoint.every = 15.0;
  config.checkpoint.directory = dir;
  const SubstrateSnapshot checkpointing = SubstrateSnapshot::Build(config);
  const ExperimentResult with_checkpoints =
      RunOnSnapshot(checkpointing, ManagerKind::kCustody);
  {
    SCOPED_TRACE("checkpointing run vs straight");
    ExpectResultsIdentical(with_checkpoints, straight);
  }

  const std::string first = dir + "/checkpoint-0001.snap";
  std::vector<std::uint8_t> first_bytes;
  ASSERT_NO_THROW(first_bytes = snap::ReadFile(first));
  // The snapshot itself parses and carries this run's identity.
  snap::SnapshotReader reader(first_bytes);
  EXPECT_EQ(reader.config_hash(),
            ConfigHash(config, ManagerKind::kCustody));
  EXPECT_EQ(reader.sim_time(), 15.0);

  // Manifest sidecar: schema version, config hash, sim time, manager.
  std::ifstream manifest(first + ".json");
  ASSERT_TRUE(manifest.good());
  std::stringstream buffer;
  buffer << manifest.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"config_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_time\""), std::string::npos);
  EXPECT_NE(json.find("\"manager\""), std::string::npos);

  // Kill-and-resume: a fresh run restored from the mid-run checkpoint must
  // finish with the same summaries as the uninterrupted run.
  ExperimentConfig resumed_config = BaseConfig(ManagerKind::kCustody, 2530);
  resumed_config.checkpoint.resume_path = first;
  const SubstrateSnapshot resumed_snapshot =
      SubstrateSnapshot::Build(resumed_config);
  const ExperimentResult resumed =
      RunOnSnapshot(resumed_snapshot, ManagerKind::kCustody);
  {
    SCOPED_TRACE("resumed run vs straight");
    ExpectResultsIdentical(resumed, straight);
  }
}

// The config hash pins a snapshot to its exact config + manager: restoring
// onto anything else is a typed error, not a silent divergence.
TEST(SnapshotEquivalence, ConfigHashMismatchIsRejected) {
  const SubstrateSnapshot snapshot =
      SubstrateSnapshot::Build(BaseConfig(ManagerKind::kCustody, 2540));
  std::vector<std::uint8_t> bytes;
  {
    LiveRun run(snapshot, ManagerKind::kCustody);
    run.run_until(5.0);
    bytes = run.save();
  }
  // Same substrate, different manager.
  LiveRun other_manager(snapshot, ManagerKind::kStandalone);
  EXPECT_THROW(other_manager.restore(bytes), snap::SnapshotError);

  // Different seed (hence different config hash), same manager.
  const SubstrateSnapshot other_snapshot =
      SubstrateSnapshot::Build(BaseConfig(ManagerKind::kCustody, 2541));
  LiveRun other_seed(other_snapshot, ManagerKind::kCustody);
  EXPECT_THROW(other_seed.restore(bytes), snap::SnapshotError);
}

TEST(SnapshotEquivalence, ConfigHashSeparatesKnobsButNotCheckpointing) {
  const ExperimentConfig base = BaseConfig(ManagerKind::kCustody, 2550);
  const std::uint64_t h = ConfigHash(base, ManagerKind::kCustody);

  ExperimentConfig other = base;
  other.seed = 2551;
  EXPECT_NE(ConfigHash(other, ManagerKind::kCustody), h);

  other = base;
  other.num_nodes += 1;
  EXPECT_NE(ConfigHash(other, ManagerKind::kCustody), h);

  EXPECT_NE(ConfigHash(base, ManagerKind::kPool), h);

  // Checkpoint knobs are operational, not behavioural: toggling them must
  // NOT change the hash (else a resumed run could never match its own
  // snapshot).
  other = base;
  other.checkpoint.every = 15.0;
  other.checkpoint.directory = "/somewhere/else";
  other.checkpoint.resume_path = "x.snap";
  EXPECT_EQ(ConfigHash(other, ManagerKind::kCustody), h);
}

TEST(SnapshotEquivalence, ValidateConfigRejectsUnsoundCheckpointKnobs) {
  {
    ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2560);
    config.checkpoint.every = -1.0;
    try {
      ValidateConfig(config);
      FAIL() << "negative checkpoint.every accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("checkpoint.every"),
                std::string::npos);
    }
  }
  {
    ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2560);
    config.checkpoint.every = 10.0;
    config.checkpoint.directory.clear();
    try {
      ValidateConfig(config);
      FAIL() << "empty checkpoint.directory accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("checkpoint.directory"),
                std::string::npos);
    }
  }
  {
    ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2560);
    config.checkpoint.every = 10.0;
    config.tracing.enabled = true;
    EXPECT_THROW(ValidateConfig(config), std::invalid_argument);
  }
  {
    ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2560);
    config.checkpoint.resume_path = "whatever.snap";
    config.tracing.enabled = true;
    EXPECT_THROW(ValidateConfig(config), std::invalid_argument);
  }
}

// save() refuses to snapshot a traced run: the ring buffers are
// observability, not state, and silently dropping them would lie.
TEST(SnapshotEquivalence, SaveWithTracerIsRejected) {
  ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2570);
  config.tracing.enabled = true;
  const SubstrateSnapshot snapshot = SubstrateSnapshot::Build(config);
  LiveRun run(snapshot, ManagerKind::kCustody);
  run.run_until(5.0);
  EXPECT_THROW((void)run.save(), snap::SnapshotError);
}

// An Rng restored mid-sequence continues with bit-identical draws — the
// foundation every layer's determinism rests on.
TEST(SnapshotEquivalence, RngDrawSequencePinnedAcrossRestore) {
  Rng rng(0xabcdef12345ULL);
  for (int i = 0; i < 100; ++i) (void)rng.uniform(0.0, 1.0);

  snap::SnapshotWriter w;
  w.begin_section("RNG ");
  rng.SaveTo(w);
  w.end_section();
  const auto bytes = w.finish(0, 0.0);

  std::vector<double> expected_uniform;
  std::vector<int> expected_ints;
  std::vector<double> expected_exp;
  for (int i = 0; i < 32; ++i) {
    expected_uniform.push_back(rng.uniform(0.0, 1.0));
    expected_ints.push_back(rng.uniform_int(0, 1000000));
    expected_exp.push_back(rng.exponential(4.0));
  }
  Rng forked = rng.fork(7);
  std::vector<double> expected_fork;
  for (int i = 0; i < 8; ++i) expected_fork.push_back(forked.uniform(0., 1.));

  Rng restored(1);  // deliberately different seed; restore overwrites
  snap::SnapshotReader r(bytes);
  r.begin_section("RNG ");
  restored.RestoreFrom(r);
  r.end_section();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(restored.uniform(0.0, 1.0), expected_uniform[i]) << i;
    EXPECT_EQ(restored.uniform_int(0, 1000000), expected_ints[i]) << i;
    EXPECT_EQ(restored.exponential(4.0), expected_exp[i]) << i;
  }
  // fork() derives from the restored seed, so sub-streams line up too.
  Rng refork = restored.fork(7);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(refork.uniform(0., 1.), expected_fork[i]) << i;
  }
}

// A SubmissionStream restored mid-trace emits the exact tail the original
// would have (the fork(3) arrival process).
TEST(SnapshotEquivalence, SubmissionStreamDrawsPinnedAcrossRestore) {
  ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2580);
  config.trace.jobs_per_app = 8;
  config.steady.enabled = true;
  const SubstrateSnapshot snapshot = SubstrateSnapshot::Build(config);

  SubmissionStream original = snapshot.make_submission_stream();
  for (int i = 0; i < 5; ++i) (void)original.next();

  snap::SnapshotWriter w;
  w.begin_section("STRM");
  original.SaveTo(w);
  w.end_section();
  const auto bytes = w.finish(0, 0.0);

  std::vector<Submission> expected;
  while (!original.done()) expected.push_back(original.next());
  ASSERT_FALSE(expected.empty());

  SubmissionStream restored = snapshot.make_submission_stream();
  snap::SnapshotReader r(bytes);
  r.begin_section("STRM");
  restored.RestoreFrom(r);
  r.end_section();
  for (const Submission& want : expected) {
    ASSERT_FALSE(restored.done());
    const Submission got = restored.next();
    EXPECT_EQ(got.time, want.time);
    EXPECT_EQ(got.app_index, want.app_index);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.file_index, want.file_index);
  }
  EXPECT_TRUE(restored.done());
}

// Payload corruption with a RECOMPUTED footer checksum sails past the
// integrity check and hits the per-layer validation: restore must throw a
// typed error or succeed benignly — never crash or corrupt memory.  (The
// sanitizer CI job runs this test under ASan/UBSan.)
TEST(SnapshotEquivalence, CorruptPayloadWithFixedChecksumNeverCrashes) {
  ExperimentConfig config = BaseConfig(ManagerKind::kCustody, 2590);
  config.node_failures = 0;  // smaller state, faster attempts
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 2;
  const SubstrateSnapshot snapshot = SubstrateSnapshot::Build(config);
  std::vector<std::uint8_t> bytes;
  {
    LiveRun run(snapshot, ManagerKind::kCustody);
    run.run_until(8.0);
    bytes = run.save();
  }
  const std::size_t payload_begin = 24;
  const std::size_t payload_end = bytes.size() - 8;
  // Stride through the payload so every section gets hit while the test
  // stays fast; two flip patterns per offset (low bit and high bit).
  const std::size_t stride = std::max<std::size_t>(
      1, (payload_end - payload_begin) / 160);
  int attempted = 0;
  for (std::size_t off = payload_begin; off < payload_end; off += stride) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> bad = bytes;
      bad[off] ^= flip;
      const std::uint64_t sum = snap::Fnv1a(bad.data(), bad.size() - 8);
      for (int i = 0; i < 8; ++i) {
        bad[bad.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(sum >> (8 * i));
      }
      LiveRun victim(snapshot, ManagerKind::kCustody);
      try {
        victim.restore(bad);
        // A flip in slack bits can be benign; that's fine.
      } catch (const std::exception&) {
        // Typed rejection is the expected outcome.
      }
      ++attempted;
    }
  }
  EXPECT_GE(attempted, 300);
}

}  // namespace
}  // namespace custody::workload
