// Unit tests for the snap:: snapshot encoding: scalar round-trips, section
// framing, and the fail-loudly guarantees — a corrupt, truncated or
// wrong-version buffer must throw SnapshotError from the reader, never
// produce garbage reads or UB.
#include "common/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace custody::snap {
namespace {

std::vector<std::uint8_t> SampleSnapshot() {
  SnapshotWriter w;
  w.begin_section("AAAA");
  w.u8(0x5a);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.b(true);
  w.b(false);
  w.size(17);
  w.str("hello snapshot");
  w.end_section();
  w.begin_section("BBBB");
  w.u64(7);
  w.end_section();
  return w.finish(/*config_hash=*/0xfeedfacecafebeefULL, /*sim_time=*/12.5);
}

TEST(SnapshotCodec, RoundTripsEveryScalarType) {
  const auto bytes = SampleSnapshot();
  SnapshotReader r(bytes);
  EXPECT_EQ(r.format_version(), kFormatVersion);
  EXPECT_EQ(r.config_hash(), 0xfeedfacecafebeefULL);
  EXPECT_EQ(r.sim_time(), 12.5);
  r.begin_section("AAAA");
  EXPECT_EQ(r.u8(), 0x5a);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  EXPECT_EQ(r.size(), 17u);
  EXPECT_EQ(r.str(), "hello snapshot");
  r.end_section();
  r.begin_section("BBBB");
  EXPECT_EQ(r.u64(), 7u);
  r.end_section();
  EXPECT_TRUE(r.exhausted());
}

TEST(SnapshotCodec, RoundTripsExtremeDoubles) {
  SnapshotWriter w;
  w.begin_section("DBLS");
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           1.0 + std::numeric_limits<double>::epsilon()};
  for (const double v : values) w.f64(v);
  w.end_section();
  const auto bytes = w.finish(1, 0.0);
  SnapshotReader r(bytes);
  r.begin_section("DBLS");
  for (const double v : values) {
    const double got = r.f64();
    // Bit-exact: distinguishes -0.0 from 0.0.
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
  }
  r.end_section();
}

TEST(SnapshotCodec, WrongSectionTagThrows) {
  const auto bytes = SampleSnapshot();
  SnapshotReader r(bytes);
  EXPECT_THROW(r.begin_section("ZZZZ"), SnapshotError);
}

TEST(SnapshotCodec, UnderConsumedSectionThrows) {
  const auto bytes = SampleSnapshot();
  SnapshotReader r(bytes);
  r.begin_section("AAAA");
  (void)r.u8();
  EXPECT_THROW(r.end_section(), SnapshotError);
}

TEST(SnapshotCodec, SectionsMustBeReadInWrittenOrder) {
  const auto bytes = SampleSnapshot();
  SnapshotReader r(bytes);
  // "BBBB" exists later in the stream, but sections are sequential — no
  // random access, so asking for it while "AAAA" is next must throw.
  EXPECT_THROW(r.begin_section("BBBB"), SnapshotError);
}

TEST(SnapshotCodec, OverReadingSectionThrows) {
  SnapshotWriter w;
  w.begin_section("TINY");
  w.u8(1);
  w.end_section();
  const auto bytes = w.finish(0, 0.0);
  SnapshotReader r(bytes);
  r.begin_section("TINY");
  (void)r.u8();
  EXPECT_THROW((void)r.u64(), SnapshotError);
}

TEST(SnapshotCodec, ContainerCountLargerThanPayloadThrows) {
  SnapshotWriter w;
  w.begin_section("CNT ");
  w.size(std::numeric_limits<std::uint64_t>::max());
  w.end_section();
  const auto bytes = w.finish(0, 0.0);
  SnapshotReader r(bytes);
  r.begin_section("CNT ");
  // size() enforces count <= remaining bytes so a hostile count cannot
  // drive a multi-gigabyte reserve or an unbounded loop.
  EXPECT_THROW((void)r.size(), SnapshotError);
}

TEST(SnapshotCodec, TruncationAtEveryLengthThrows) {
  const auto bytes = SampleSnapshot();
  // Every proper prefix must be rejected: inside the header, at the header
  // boundary, inside each section, at section boundaries, and with only
  // the footer missing.  Nothing may construct successfully.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(len));
    EXPECT_THROW(SnapshotReader r(std::move(cut)), SnapshotError)
        << "prefix of length " << len << " was accepted";
  }
}

TEST(SnapshotCodec, BitFlipAtEveryByteThrows) {
  const auto bytes = SampleSnapshot();
  // The footer checksum covers header + payload, so any single-bit flip —
  // including one inside the footer itself — must be caught at
  // construction.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_THROW(SnapshotReader r(std::move(bad)), SnapshotError)
        << "flip at byte " << i << " was accepted";
  }
}

// Patch the footer so framing-level corruption (not detectable by
// checksum once recomputed) reaches the reader's structural validation.
void FixChecksum(std::vector<std::uint8_t>& bytes) {
  const std::uint64_t sum = Fnv1a(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

TEST(SnapshotCodec, WrongVersionThrowsEvenWithValidChecksum) {
  auto bytes = SampleSnapshot();
  bytes[4] ^= 0xff;  // format version lives at header offset 4
  FixChecksum(bytes);
  EXPECT_THROW(SnapshotReader r(std::move(bytes)), SnapshotError);
}

TEST(SnapshotCodec, BadMagicThrowsEvenWithValidChecksum) {
  auto bytes = SampleSnapshot();
  bytes[0] ^= 0xff;
  FixChecksum(bytes);
  EXPECT_THROW(SnapshotReader r(std::move(bytes)), SnapshotError);
}

TEST(SnapshotCodec, SectionLengthCorruptionThrows) {
  // Grow the first section's recorded length past the payload: framing
  // validation must reject it even though the checksum is valid.
  auto bytes = SampleSnapshot();
  // Header is 24 bytes, then the 4-char tag, then the u64 section length.
  bytes[24 + 4] = 0xff;
  FixChecksum(bytes);
  std::vector<std::uint8_t> copy = bytes;
  try {
    SnapshotReader r(std::move(copy));
    r.begin_section("AAAA");
    FAIL() << "oversized section accepted";
  } catch (const SnapshotError&) {
  }
}

TEST(SnapshotCodec, NestedSectionsRejectedAtWrite) {
  SnapshotWriter w;
  w.begin_section("OUTR");
  EXPECT_THROW(w.begin_section("INNR"), SnapshotError);
}

TEST(SnapshotCodec, FinishWithOpenSectionThrows) {
  SnapshotWriter w;
  w.begin_section("OPEN");
  EXPECT_THROW((void)w.finish(0, 0.0), SnapshotError);
}

TEST(SnapshotCodec, Fnv1aMatchesReferenceVector) {
  // FNV-1a 64 of "a" per the published reference parameters.
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(Fnv1a(a, 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a(nullptr, 0), 0xcbf29ce484222325ULL);
}

TEST(SnapshotFile, WriteReadRoundTrip) {
  const auto bytes = SampleSnapshot();
  const std::string path =
      ::testing::TempDir() + "/snapshot_test_roundtrip.snap";
  WriteFile(path, bytes);
  EXPECT_EQ(ReadFile(path), bytes);
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingFileThrows) {
  EXPECT_THROW((void)ReadFile("/nonexistent/dir/nope.snap"), SnapshotError);
}

}  // namespace
}  // namespace custody::snap
