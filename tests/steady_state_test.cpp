// The steady-state streaming engine's contract:
//
//  - SubmissionStream is deterministic: two streams over the same snapshot
//    emit the identical schedule, in non-decreasing time order, with exactly
//    jobs_per_app submissions per application.
//  - The lazy pump is bit-identical to the materialized reference sub-mode
//    (steady.materialize_submissions) across every manager kind and seed:
//    generating submissions one event ahead changes no scheduling decision.
//  - Retirement + streaming metrics preserve every deterministic field
//    (makespan, event and launch counters, locality percentages) and keep
//    summary counts/moments matching the exact reference; P² percentiles
//    stay within the documented tolerance.
//  - Retired jobs are destroyed through the pool: jobs_retired equals
//    jobs_completed and finished jobs are no longer reachable.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "workload/harness.h"

namespace custody::workload {
namespace {

ExperimentConfig SteadyConfig(ManagerKind manager, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.num_nodes = 20;
  config.executors_per_node = 2;
  config.manager = manager;
  config.kinds = {WorkloadKind::kWordCount, WorkloadKind::kSort};
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 12;
  config.trace.mean_interarrival = 8.0;
  config.trace.files_per_kind = 6;
  config.seed = seed;
  config.steady.enabled = true;
  config.steady.retire_jobs = false;
  config.steady.streaming_metrics = false;
  return config;
}

void ExpectSummariesIdentical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.p25, b.p25);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p75, b.p75);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.max, b.max);
}

/// Every deterministic scalar of the result — the scheduling decisions.
/// Excludes the summaries, so both exact-vs-exact and exact-vs-streaming
/// comparisons share it.
void ExpectDecisionsIdentical(const ExperimentResult& a,
                              const ExperimentResult& b) {
  EXPECT_EQ(a.manager_name, b.manager_name);
  EXPECT_EQ(a.overall_task_locality_percent, b.overall_task_locality_percent);
  EXPECT_EQ(a.local_job_percent, b.local_job_percent);
  ASSERT_EQ(a.per_app_local_job_fraction.size(),
            b.per_app_local_job_fraction.size());
  for (std::size_t i = 0; i < a.per_app_local_job_fraction.size(); ++i) {
    EXPECT_EQ(a.per_app_local_job_fraction[i],
              b.per_app_local_job_fraction[i])
        << "per_app_local_job_fraction[" << i << "]";
  }
  EXPECT_EQ(a.manager_stats.allocation_rounds,
            b.manager_stats.allocation_rounds);
  EXPECT_EQ(a.manager_stats.executors_granted,
            b.manager_stats.executors_granted);
  EXPECT_EQ(a.manager_stats.executors_released,
            b.manager_stats.executors_released);
  EXPECT_EQ(a.manager_stats.offers_made, b.manager_stats.offers_made);
  EXPECT_EQ(a.manager_stats.offers_rejected, b.manager_stats.offers_rejected);
  EXPECT_EQ(a.manager_stats.executors_scanned,
            b.manager_stats.executors_scanned);
  EXPECT_EQ(a.manager_stats.apps_considered, b.manager_stats.apps_considered);
  EXPECT_EQ(a.round_yield_fraction, b.round_yield_fraction);
  EXPECT_EQ(a.net_stats.recomputes_run, b.net_stats.recomputes_run);
  EXPECT_EQ(a.net_stats.rounds, b.net_stats.rounds);
  EXPECT_EQ(a.net_bytes_delivered, b.net_bytes_delivered);
  EXPECT_EQ(a.launches_local, b.launches_local);
  EXPECT_EQ(a.launches_covered_busy, b.launches_covered_busy);
  EXPECT_EQ(a.launches_uncovered, b.launches_uncovered);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.peak_live_tasks, b.peak_live_tasks);
}

// ---------------------------------------------------------------------------
// SubmissionStream
// ---------------------------------------------------------------------------

TEST(SubmissionStream, DrainIsDeterministicSortedAndComplete) {
  const SubstrateSnapshot snapshot =
      SubstrateSnapshot::Build(SteadyConfig(ManagerKind::kCustody, 9));
  const std::vector<Submission> a =
      DrainStream(snapshot.make_submission_stream());
  const std::vector<Submission> b =
      DrainStream(snapshot.make_submission_stream());
  ASSERT_EQ(a.size(), 3u * 12u);
  ASSERT_EQ(a.size(), b.size());
  std::vector<int> per_app(3, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].app_index, b[i].app_index);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].file_index, b[i].file_index);
    if (i > 0) EXPECT_GE(a[i].time, a[i - 1].time);
    EXPECT_GT(a[i].time, 0.0);
    ++per_app[static_cast<std::size_t>(a[i].app_index)];
  }
  for (const int n : per_app) EXPECT_EQ(n, 12);
}

TEST(SubmissionStream, LazyConsumptionMatchesDrain) {
  const SubstrateSnapshot snapshot =
      SubstrateSnapshot::Build(SteadyConfig(ManagerKind::kCustody, 3));
  const std::vector<Submission> drained =
      DrainStream(snapshot.make_submission_stream());
  SubmissionStream lazy = snapshot.make_submission_stream();
  EXPECT_EQ(lazy.total_jobs(), drained.size());
  for (const Submission& expected : drained) {
    ASSERT_FALSE(lazy.done());
    EXPECT_EQ(lazy.peek().time, expected.time);
    const Submission got = lazy.next();
    EXPECT_EQ(got.time, expected.time);
    EXPECT_EQ(got.app_index, expected.app_index);
    EXPECT_EQ(got.kind, expected.kind);
    EXPECT_EQ(got.file_index, expected.file_index);
  }
  EXPECT_TRUE(lazy.done());
  EXPECT_EQ(lazy.emitted(), drained.size());
}

TEST(SubmissionStream, DiurnalModulationReshapesArrivalsDeterministically) {
  ExperimentConfig flat = SteadyConfig(ManagerKind::kCustody, 11);
  ExperimentConfig wavy = flat;
  wavy.steady.diurnal_amplitude = 0.8;
  wavy.steady.diurnal_period = 60.0;
  const std::vector<Submission> a =
      DrainStream(SubstrateSnapshot::Build(flat).make_submission_stream());
  const std::vector<Submission> b =
      DrainStream(SubstrateSnapshot::Build(wavy).make_submission_stream());
  const std::vector<Submission> b2 =
      DrainStream(SubstrateSnapshot::Build(wavy).make_submission_stream());
  ASSERT_EQ(a.size(), b.size());
  // The modulation consumes the same underlying draws, so only times move.
  bool any_time_differs = false;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i].time, b2[i].time);
    if (i > 0) EXPECT_GE(b[i].time, b[i - 1].time);
    if (a[i].time != b[i].time) any_time_differs = true;
  }
  EXPECT_TRUE(any_time_differs);
}

// ---------------------------------------------------------------------------
// Lazy pump == materialized reference, bit for bit
// ---------------------------------------------------------------------------

TEST(SteadyState, LazyPumpMatchesMaterializedForEveryManager) {
  for (const ManagerKind manager :
       {ManagerKind::kCustody, ManagerKind::kStandalone, ManagerKind::kPool,
        ManagerKind::kOffer}) {
    for (const std::uint64_t seed : {42u, 1234u}) {
      SCOPED_TRACE(std::string("manager=") + ManagerName(manager) +
                   " seed=" + std::to_string(seed));
      ExperimentConfig materialized = SteadyConfig(manager, seed);
      materialized.steady.materialize_submissions = true;
      ExperimentConfig lazy = SteadyConfig(manager, seed);
      const ExperimentResult a = RunExperiment(materialized);
      const ExperimentResult b = RunExperiment(lazy);
      ExpectDecisionsIdentical(a, b);
      {
        SCOPED_TRACE("job_locality");
        ExpectSummariesIdentical(a.job_locality, b.job_locality);
      }
      {
        SCOPED_TRACE("jct");
        ExpectSummariesIdentical(a.jct, b.jct);
      }
      {
        SCOPED_TRACE("input_stage");
        ExpectSummariesIdentical(a.input_stage, b.input_stage);
      }
      {
        SCOPED_TRACE("sched_delay");
        ExpectSummariesIdentical(a.sched_delay, b.sched_delay);
      }
      EXPECT_EQ(a.jobs_retired, 0u);
      EXPECT_EQ(b.jobs_retired, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Retirement + streaming metrics vs the exact reference
// ---------------------------------------------------------------------------

void ExpectStreamingSummaryMatches(const Summary& exact,
                                   const Summary& streaming) {
  EXPECT_EQ(exact.count, streaming.count);
  // Moments come from a Welford accumulator instead of a sorted vector:
  // equal up to floating-point association, so compare tightly but not
  // bitwise.
  const double scale =
      std::max({1.0, std::abs(exact.mean), std::abs(exact.max)});
  EXPECT_NEAR(exact.mean, streaming.mean, 1e-9 * scale);
  EXPECT_NEAR(exact.stddev, streaming.stddev, 1e-6 * scale);
  EXPECT_EQ(exact.min, streaming.min);
  EXPECT_EQ(exact.max, streaming.max);
  // P² percentile estimates: within the sample range, and within a
  // generous fraction of it at these small sample counts — with only ~36
  // samples the markers have barely converged (the dedicated
  // streaming_stats tests pin the few-percent large-N accuracy contract).
  const double range = exact.max - exact.min;
  const std::pair<double, double> estimates[] = {
      {streaming.p25, exact.p25},
      {streaming.median, exact.median},
      {streaming.p75, exact.p75},
      {streaming.p95, exact.p95},
      {streaming.p99, exact.p99},
  };
  for (const auto& [est, ref] : estimates) {
    EXPECT_GE(est, exact.min - 1e-12);
    EXPECT_LE(est, exact.max + 1e-12);
    EXPECT_NEAR(est, ref, 0.5 * range + 1e-12);
  }
}

TEST(SteadyState, RetirementAndStreamingPreserveSchedulingDecisions) {
  for (const ManagerKind manager :
       {ManagerKind::kCustody, ManagerKind::kStandalone}) {
    SCOPED_TRACE(std::string("manager=") + ManagerName(manager));
    ExperimentConfig reference = SteadyConfig(manager);
    reference.steady.materialize_submissions = true;
    ExperimentConfig streaming = SteadyConfig(manager);
    streaming.steady.retire_jobs = true;
    streaming.steady.streaming_metrics = true;
    const ExperimentResult a = RunExperiment(reference);
    const ExperimentResult b = RunExperiment(streaming);
    ExpectDecisionsIdentical(a, b);
    {
      SCOPED_TRACE("job_locality");
      ExpectStreamingSummaryMatches(a.job_locality, b.job_locality);
    }
    {
      SCOPED_TRACE("jct");
      ExpectStreamingSummaryMatches(a.jct, b.jct);
    }
    {
      SCOPED_TRACE("input_stage");
      ExpectStreamingSummaryMatches(a.input_stage, b.input_stage);
    }
    {
      SCOPED_TRACE("sched_delay");
      ExpectStreamingSummaryMatches(a.sched_delay, b.sched_delay);
    }
    EXPECT_EQ(b.jobs_retired, b.jobs_completed);
    EXPECT_EQ(b.jobs_completed, 3u * 12u);
    EXPECT_GT(b.peak_live_tasks, 0u);
  }
}

TEST(SteadyState, WarmupDiscardsEarlySamplesButNotMakespan) {
  ExperimentConfig full = SteadyConfig(ManagerKind::kCustody);
  full.steady.materialize_submissions = true;
  const ExperimentResult all = RunExperiment(full);
  ASSERT_GT(all.jct.count, 0u);

  ExperimentConfig trimmed = full;
  trimmed.steady.warmup = all.makespan / 2.0;
  const ExperimentResult warm = RunExperiment(trimmed);
  // Warm-up changes which jobs enter the figures, never the simulation.
  EXPECT_EQ(warm.makespan, all.makespan);
  EXPECT_EQ(warm.events_processed, all.events_processed);
  EXPECT_EQ(warm.jobs_completed, all.jobs_completed);
  EXPECT_LT(warm.jct.count, all.jct.count);
  EXPECT_GT(warm.jct.count, 0u);

  // Streaming mode applies the identical record-time filter: same count.
  ExperimentConfig streaming_trimmed = SteadyConfig(ManagerKind::kCustody);
  streaming_trimmed.steady.warmup = trimmed.steady.warmup;
  streaming_trimmed.steady.retire_jobs = true;
  streaming_trimmed.steady.streaming_metrics = true;
  const ExperimentResult warm_streaming = RunExperiment(streaming_trimmed);
  EXPECT_EQ(warm_streaming.jct.count, warm.jct.count);
  EXPECT_EQ(warm_streaming.makespan, warm.makespan);
}

TEST(SteadyState, DiurnalRunCompletesAllJobsUnderRetirement) {
  ExperimentConfig config = SteadyConfig(ManagerKind::kCustody, 5);
  config.steady.retire_jobs = true;
  config.steady.streaming_metrics = true;
  config.steady.diurnal_amplitude = 0.6;
  config.steady.diurnal_period = 120.0;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.jobs_completed, 3u * 12u);
  EXPECT_EQ(result.jobs_retired, result.jobs_completed);
  EXPECT_EQ(result.jct.count, result.jobs_completed);
}

TEST(SteadyState, SnapshotSkipsTraceMaterialization) {
  const SubstrateSnapshot snapshot =
      SubstrateSnapshot::Build(SteadyConfig(ManagerKind::kCustody));
  EXPECT_TRUE(snapshot.trace().empty());
  EXPECT_EQ(snapshot.make_submission_stream().total_jobs(), 3u * 12u);
}

}  // namespace
}  // namespace custody::workload
