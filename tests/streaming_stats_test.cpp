// The streaming-statistics accuracy contract (common/streaming_stats.h):
// exact moments, exact small-sample percentiles, and P² estimates within a
// few percent of the exact order statistics at large N on the smooth
// distributions the simulator produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/streaming_stats.h"

namespace custody {
namespace {

TEST(StreamingPercentile, EmptyIsZero) {
  StreamingPercentile p(0.5);
  EXPECT_EQ(p.value(), 0.0);
  EXPECT_EQ(p.count(), 0u);
}

TEST(StreamingPercentile, RejectsBadQuantile) {
  EXPECT_THROW(StreamingPercentile(-0.1), std::invalid_argument);
  EXPECT_THROW(StreamingPercentile(1.1), std::invalid_argument);
  EXPECT_NO_THROW(StreamingPercentile(0.0));
  EXPECT_NO_THROW(StreamingPercentile(1.0));
}

TEST(StreamingPercentile, ExactBelowFiveSamples) {
  // Below kMarkers samples the estimator buffers and interpolates exactly.
  const std::vector<double> samples = {7.0, 1.0, 5.0, 3.0};
  StreamingPercentile p50(0.5);
  std::vector<double> sorted;
  for (const double x : samples) {
    p50.add(x);
    sorted.push_back(x);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(p50.value(), Percentile(sorted, 0.5))
        << "after " << sorted.size() << " samples";
  }
}

TEST(StreamingPercentile, MedianOfUniformConvergesWithinPercent) {
  Rng rng(7);
  StreamingPercentile p50(0.5);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    p50.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = Percentile(all, 0.5);
  EXPECT_NEAR(p50.value(), exact, 0.02 * 100.0);
}

TEST(StreamingPercentile, TailQuantileOfExponentialWithinFivePercent) {
  // Heavy-ish right tail — the shape of JCT distributions.
  Rng rng(21);
  StreamingPercentile p95(0.95);
  StreamingPercentile p99(0.99);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.exponential(10.0);
    p95.add(x);
    p99.add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact95 = Percentile(all, 0.95);
  const double exact99 = Percentile(all, 0.99);
  EXPECT_NEAR(p95.value(), exact95, 0.05 * exact95);
  EXPECT_NEAR(p99.value(), exact99, 0.05 * exact99);
}

TEST(StreamingPercentile, ExtremeQuantilesTrackMinAndMax) {
  Rng rng(3);
  StreamingPercentile p0(0.0);
  StreamingPercentile p100(1.0);
  double min = 1e300;
  double max = -1e300;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(50.0, 10.0);
    p0.add(x);
    p100.add(x);
    min = std::min(min, x);
    max = std::max(max, x);
  }
  EXPECT_DOUBLE_EQ(p0.value(), min);
  EXPECT_DOUBLE_EQ(p100.value(), max);
}

TEST(StreamingSummary, MomentsAreExactAndPercentilesClose) {
  Rng rng(99);
  StreamingSummary streaming;
  std::vector<double> all;
  for (int i = 0; i < 30000; ++i) {
    // Bimodal-ish mixture: mostly short jobs with a slow mode.
    const double x = rng.bernoulli(0.8) ? rng.exponential(5.0)
                                        : 40.0 + rng.exponential(20.0);
    streaming.add(x);
    all.push_back(x);
  }
  const Summary exact = Summarize(all);
  const Summary est = streaming.summarize();
  EXPECT_EQ(est.count, exact.count);
  EXPECT_NEAR(est.mean, exact.mean, 1e-9 * exact.mean);
  EXPECT_NEAR(est.stddev, exact.stddev, 1e-6 * exact.stddev);
  EXPECT_EQ(est.min, exact.min);
  EXPECT_EQ(est.max, exact.max);
  EXPECT_NEAR(est.p25, exact.p25, 0.05 * (exact.max - exact.min));
  EXPECT_NEAR(est.median, exact.median, 0.05 * (exact.max - exact.min));
  EXPECT_NEAR(est.p75, exact.p75, 0.05 * (exact.max - exact.min));
  EXPECT_NEAR(est.p95, exact.p95, 0.05 * (exact.max - exact.min));
  EXPECT_NEAR(est.p99, exact.p99, 0.05 * (exact.max - exact.min));
}

TEST(StreamingSummary, EmptyMatchesEmptySummarize) {
  const Summary exact = Summarize({});
  const Summary est = StreamingSummary().summarize();
  EXPECT_EQ(est.count, exact.count);
  EXPECT_EQ(est.mean, exact.mean);
  EXPECT_EQ(est.stddev, exact.stddev);
  EXPECT_EQ(est.min, exact.min);
  EXPECT_EQ(est.median, exact.median);
  EXPECT_EQ(est.max, exact.max);
}

TEST(StreamingSummary, SmallSamplesMatchExactSummarize) {
  // Below kMarkers samples every percentile is computed exactly.
  const std::vector<double> samples = {3.0, 1.0, 4.0, 1.5};
  StreamingSummary streaming;
  for (const double x : samples) streaming.add(x);
  const Summary exact = Summarize(samples);
  const Summary est = streaming.summarize();
  EXPECT_EQ(est.count, exact.count);
  EXPECT_DOUBLE_EQ(est.p25, exact.p25);
  EXPECT_DOUBLE_EQ(est.median, exact.median);
  EXPECT_DOUBLE_EQ(est.p75, exact.p75);
  EXPECT_DOUBLE_EQ(est.p95, exact.p95);
  EXPECT_DOUBLE_EQ(est.p99, exact.p99);
}

}  // namespace
}  // namespace custody
