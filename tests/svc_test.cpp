// The control plane end-to-end over real loopback HTTP:
//
//  - Determinism: a config submitted as JSON yields the bit-identical
//    ExperimentResult a direct RunExperiment call produces (exact doubles,
//    events_processed included), for every manager kind.
//  - The codec round-trips configs exactly and rejects unknown keys.
//  - Every ValidateConfig rejection surfaces as a structured 400 naming
//    the offending field.
//  - Concurrent submissions from multiple client threads all complete
//    correctly (input-order-independent; TSan-clean).
//  - Sessions: fork-twice-identical, fork-diverge-after-perturbation,
//    snapshots restorable, busy/unknown ids → 409/404.
//  - Cancel, trace export, and clean errors for malformed traffic.
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/snapshot.h"
#include "svc/json_api.h"
#include "svc/router.h"
#include "svc/server.h"
#include "svc/session.h"
#include "workload/harness.h"

namespace custody::svc {
namespace {

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::ManagerKind;
using workload::RunExperiment;
using workload::WorkloadKind;

ExperimentConfig SmallConfig(ManagerKind manager,
                             WorkloadKind kind = WorkloadKind::kWordCount,
                             std::size_t nodes = 20, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.num_nodes = nodes;
  config.executors_per_node = 2;
  config.manager = manager;
  config.kinds = {kind};
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 5;
  config.trace.files_per_kind = 4;
  config.seed = seed;
  return config;
}

ExperimentConfig SteadyConfig(std::uint64_t seed = 7) {
  ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  config.trace.jobs_per_app = 20;
  config.steady.enabled = true;
  config.seed = seed;
  return config;
}

/// Everything deterministic in a result, as exact doubles, from its wire
/// form.  Shared by the identity tests below.
void ExpectWireResultMatches(const JsonValue& wire,
                             const ExperimentResult& direct) {
  EXPECT_EQ(wire.find("manager_name")->as_string(), direct.manager_name);
  const JsonValue& jct = *wire.find("jct");
  EXPECT_EQ(jct.find("count")->as_number(),
            static_cast<double>(direct.jct.count));
  EXPECT_EQ(jct.find("mean")->as_number(), direct.jct.mean);
  EXPECT_EQ(jct.find("p99")->as_number(), direct.jct.p99);
  EXPECT_EQ(jct.find("stddev")->as_number(), direct.jct.stddev);
  const JsonValue& locality = *wire.find("job_locality");
  EXPECT_EQ(locality.find("mean")->as_number(), direct.job_locality.mean);
  EXPECT_EQ(locality.find("max")->as_number(), direct.job_locality.max);
  EXPECT_EQ(wire.find("overall_task_locality_percent")->as_number(),
            direct.overall_task_locality_percent);
  EXPECT_EQ(wire.find("local_job_percent")->as_number(),
            direct.local_job_percent);
  EXPECT_EQ(wire.find("makespan")->as_number(), direct.makespan);
  EXPECT_EQ(wire.find("net_bytes_delivered")->as_number(),
            direct.net_bytes_delivered);
  EXPECT_EQ(wire.find("events_processed")->as_number(),
            static_cast<double>(direct.events_processed));
  EXPECT_EQ(wire.find("jobs_completed")->as_number(),
            static_cast<double>(direct.jobs_completed));
  const std::vector<JsonValue>& fractions =
      wire.find("per_app_local_job_fraction")->items();
  ASSERT_EQ(fractions.size(), direct.per_app_local_job_fraction.size());
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    EXPECT_EQ(fractions[i].as_number(),
              direct.per_app_local_job_fraction[i]);
  }
}

class ControlPlaneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;
    options.http_workers = 3;
    options.runners = 2;
    options.snapshot_dir = ::testing::TempDir() + "svc_snaps";
    plane_ = std::make_unique<ControlPlane>(options);
    plane_->start();
    port_ = plane_->port();
  }

  /// Poll GET /experiments/:id until the state is terminal.
  JsonValue WaitForTerminal(const std::string& id) {
    for (int i = 0; i < 2000; ++i) {
      const ClientResponse response =
          Fetch(port_, "GET", "/experiments/" + id);
      EXPECT_EQ(response.status, 200);
      JsonValue body = JsonReader::Parse(response.body);
      const std::string& state = body.find("state")->as_string();
      if (state != "queued" && state != "running") return body;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "experiment " << id << " never reached a terminal state";
    return JsonValue();
  }

  std::string Submit(const ExperimentConfig& config) {
    const ClientResponse response =
        Fetch(port_, "POST", "/experiments", ConfigToJson(config));
    EXPECT_EQ(response.status, 202) << response.body;
    const JsonValue body = JsonReader::Parse(response.body);
    return std::to_string(
        static_cast<std::uint64_t>(body.find("id")->as_number()));
  }

  std::unique_ptr<ControlPlane> plane_;
  std::uint16_t port_ = 0;
};

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(JsonApi, ConfigRoundTripsExactly) {
  ExperimentConfig config = SmallConfig(ManagerKind::kOffer,
                                        WorkloadKind::kSort, 30, 9);
  config.kinds = {WorkloadKind::kSort, WorkloadKind::kPageRank};
  config.cache_mb_per_node = 512.0;
  config.dataset.popularity_replication = true;
  config.slow_node_fraction = 0.2;
  config.speculation = true;
  config.steady.warmup = 12.5;
  config.scheduler.kind = app::SchedulerKind::kFifo;
  config.allocator.locality_fair = false;
  config.trace.mean_interarrival = 0.1 + 0.2;  // a non-representable double
  const ExperimentConfig decoded =
      ConfigFromJsonText(ConfigToJson(config));
  EXPECT_EQ(decoded.num_nodes, config.num_nodes);
  EXPECT_EQ(decoded.manager, config.manager);
  EXPECT_EQ(decoded.kinds, config.kinds);
  EXPECT_EQ(decoded.cache_mb_per_node, config.cache_mb_per_node);
  EXPECT_EQ(decoded.dataset.popularity_replication,
            config.dataset.popularity_replication);
  EXPECT_EQ(decoded.slow_node_fraction, config.slow_node_fraction);
  EXPECT_EQ(decoded.speculation, config.speculation);
  EXPECT_EQ(decoded.steady.warmup, config.steady.warmup);
  EXPECT_EQ(decoded.scheduler.kind, config.scheduler.kind);
  EXPECT_EQ(decoded.allocator.locality_fair, config.allocator.locality_fair);
  // Exact bits, not approximately equal.
  EXPECT_EQ(decoded.trace.mean_interarrival, config.trace.mean_interarrival);
  EXPECT_EQ(decoded.seed, config.seed);
  EXPECT_EQ(workload::ConfigHash(decoded, decoded.manager),
            workload::ConfigHash(config, config.manager));
}

TEST(JsonApi, RejectsUnknownAndMistypedFields) {
  EXPECT_THROW(ConfigFromJsonText("{\"num_nodez\":5}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("{\"trace\":{\"jobz\":5}}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("{\"num_nodes\":\"five\"}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("{\"num_nodes\":2.5}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("{\"speculation\":1}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("{\"manager\":\"yarn\"}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("{\"kinds\":[\"TensorFlow\"]}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("{\"checkpoint\":{}}"),
               std::invalid_argument);
  EXPECT_THROW(ConfigFromJsonText("[1,2]"), std::invalid_argument);
  EXPECT_NO_THROW(ConfigFromJsonText("{}"));
}

// ---------------------------------------------------------------------------
// Determinism: HTTP == direct, for every manager
// ---------------------------------------------------------------------------

TEST_F(ControlPlaneTest, HttpSubmissionIsBitIdenticalToDirectRun) {
  for (const ManagerKind manager :
       {ManagerKind::kCustody, ManagerKind::kStandalone, ManagerKind::kPool,
        ManagerKind::kOffer}) {
    const ExperimentConfig config = SmallConfig(manager);
    SCOPED_TRACE(ConfigToJson(config).substr(0, 60));
    const ExperimentResult direct = RunExperiment(config);
    const std::string id = Submit(config);
    const JsonValue done = WaitForTerminal(id);
    ASSERT_EQ(done.find("state")->as_string(), "done");
    ExpectWireResultMatches(*done.find("result"), direct);
    // The dedicated metrics endpoint serves the same document.
    const ClientResponse metrics =
        Fetch(port_, "GET", "/experiments/" + id + "/metrics");
    ASSERT_EQ(metrics.status, 200);
    ExpectWireResultMatches(JsonReader::Parse(metrics.body), direct);
  }
}

TEST_F(ControlPlaneTest, ConcurrentSubmissionsAreOrderIndependent) {
  // 8 distinct configs, submitted from 4 client threads at once, results
  // polled concurrently: every job must match its own direct run no
  // matter which runner picked it up or in which order.
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    configs.push_back(SmallConfig(
        i % 2 == 0 ? ManagerKind::kCustody : ManagerKind::kStandalone,
        i % 3 == 0 ? WorkloadKind::kSort : WorkloadKind::kWordCount,
        /*nodes=*/15 + i, /*seed=*/100 + i));
  }
  std::vector<ExperimentResult> direct;
  direct.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    direct.push_back(RunExperiment(config));
  }
  std::vector<std::string> ids(configs.size());
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([this, t, &configs, &ids] {
      for (std::size_t i = static_cast<std::size_t>(t);
           i < configs.size(); i += 4) {
        ids[i] = Submit(configs[i]);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE("config " + std::to_string(i));
    const JsonValue done = WaitForTerminal(ids[i]);
    ASSERT_EQ(done.find("state")->as_string(), "done");
    ExpectWireResultMatches(*done.find("result"), direct[i]);
  }
}

// ---------------------------------------------------------------------------
// Structured 400s: the ValidateConfig rejection table through HTTP
// ---------------------------------------------------------------------------

TEST_F(ControlPlaneTest, EveryValidationRejectionIsAStructured400) {
  const ExperimentConfig good = SmallConfig(ManagerKind::kCustody);
  using Mutate = std::function<void(ExperimentConfig&)>;
  const std::vector<std::pair<Mutate, std::string>> table = {
      {[](auto& c) { c.num_nodes = 0; }, "num_nodes"},
      {[](auto& c) { c.executors_per_node = 0; }, "executors_per_node"},
      {[](auto& c) { c.executors_per_node = -3; }, "executors_per_node"},
      {[](auto& c) { c.disk_mbps = -1.0; }, "disk_mbps"},
      {[](auto& c) { c.uplink_gbps = 0.0; }, "uplink_gbps"},
      {[](auto& c) { c.downlink_gbps = -2.0; }, "downlink_gbps"},
      {[](auto& c) { c.core_gbps = -1.0; }, "core_gbps"},
      {[](auto& c) {
         c.incremental_network = false;
         c.component_partitioned_network = true;
       },
       "component_partitioned_network"},
      {[](auto& c) { c.block_mb = 0.0; }, "block_mb"},
      {[](auto& c) { c.replication = 0; }, "replication"},
      {[](auto& c) { c.cache_mb_per_node = -1.0; }, "cache_mb_per_node"},
      {[](auto& c) { c.dataset.hot_fraction = 1.5; }, "dataset.hot_fraction"},
      {[](auto& c) { c.dataset.popularity_extra_replicas = -1; },
       "dataset.popularity_extra_replicas"},
      {[](auto& c) { c.shuffle_fan_in = 0; }, "shuffle_fan_in"},
      {[](auto& c) {
         c.speculation = true;
         c.speculation_multiplier = 1.0;
       },
       "speculation_multiplier"},
      {[](auto& c) { c.slow_node_fraction = -0.1; }, "slow_node_fraction"},
      {[](auto& c) { c.slow_node_fraction = 1.1; }, "slow_node_fraction"},
      {[](auto& c) { c.slow_node_factor = 0.0; }, "slow_node_factor"},
      {[](auto& c) { c.node_failures = -1; }, "node_failures"},
      {[](auto& c) {
         c.node_failures = 1;
         c.failure_start = -5.0;
       },
       "failure_start"},
      {[](auto& c) {
         c.node_failures = 3;
         c.failure_interval = 0.0;
       },
       "failure_interval"},
      {[](auto& c) { c.kinds.clear(); }, "kinds"},
      {[](auto& c) { c.trace.num_apps = 0; }, "trace.num_apps"},
      {[](auto& c) { c.trace.num_apps = -4; }, "trace.num_apps"},
      {[](auto& c) { c.trace.jobs_per_app = 0; }, "trace.jobs_per_app"},
      {[](auto& c) { c.trace.mean_interarrival = 0.0; },
       "trace.mean_interarrival"},
      {[](auto& c) { c.trace.zipf_skew = -0.5; }, "trace.zipf_skew"},
      {[](auto& c) { c.trace.files_per_kind = 0; }, "trace.files_per_kind"},
      {[](auto& c) { c.steady.warmup = -1.0; }, "steady.warmup"},
      {[](auto& c) { c.steady.diurnal_amplitude = -0.2; },
       "steady.diurnal_amplitude"},
      {[](auto& c) { c.steady.materialize_submissions = true; },
       "steady.materialize_submissions"},
      {[](auto& c) {
         c.steady.enabled = true;
         c.steady.retire_jobs = true;
         c.steady.streaming_metrics = false;
       },
       "steady.retire_jobs"},
  };
  for (std::size_t i = 0; i < table.size(); ++i) {
    SCOPED_TRACE("case " + std::to_string(i) + " (" + table[i].second + ")");
    ExperimentConfig bad = good;
    table[i].first(bad);
    const ClientResponse response =
        Fetch(port_, "POST", "/experiments", ConfigToJson(bad));
    EXPECT_EQ(response.status, 400) << response.body;
    const JsonValue body = JsonReader::Parse(response.body);
    ASSERT_NE(body.find("field"), nullptr) << response.body;
    EXPECT_EQ(body.find("field")->as_string(), table[i].second)
        << response.body;
  }
}

// ---------------------------------------------------------------------------
// Sessions: forking and what-if divergence
// ---------------------------------------------------------------------------

TEST_F(ControlPlaneTest, UnperturbedForksAreBitIdenticalAndRepeatable) {
  const ClientResponse created =
      Fetch(port_, "POST", "/sessions", ConfigToJson(SteadyConfig()));
  ASSERT_EQ(created.status, 201) << created.body;
  const std::string id = std::to_string(static_cast<std::uint64_t>(
      JsonReader::Parse(created.body).find("id")->as_number()));

  const ClientResponse advanced = Fetch(
      port_, "POST", "/sessions/" + id + "/advance", "{\"until\":100}");
  ASSERT_EQ(advanced.status, 200) << advanced.body;
  EXPECT_EQ(JsonReader::Parse(advanced.body).find("sim_time")->as_number(),
            100.0);

  // Fork twice with no perturbation: within each report base == whatif,
  // and the two reports are byte-identical (determinism, twice over).
  const std::string fork_body = "{\"perturb\":{\"kind\":\"none\"}}";
  const ClientResponse fork1 =
      Fetch(port_, "POST", "/sessions/" + id + "/fork", fork_body);
  const ClientResponse fork2 =
      Fetch(port_, "POST", "/sessions/" + id + "/fork", fork_body);
  ASSERT_EQ(fork1.status, 200) << fork1.body;
  ASSERT_EQ(fork2.status, 200);
  EXPECT_EQ(fork1.body, fork2.body);
  const JsonValue report = JsonReader::Parse(fork1.body);
  EXPECT_EQ(report.find("forked_at")->as_number(), 100.0);
  EXPECT_TRUE(report.find("drained")->as_bool());
  const JsonValue& delta = *report.find("delta");
  EXPECT_EQ(delta.find("jct_mean")->as_number(), 0.0);
  EXPECT_EQ(delta.find("jct_p99")->as_number(), 0.0);
  EXPECT_EQ(delta.find("local_job_percent")->as_number(), 0.0);
  EXPECT_EQ(delta.find("jobs_completed")->as_number(), 0.0);

  // And the parent session is still exactly at its boundary.
  const ClientResponse status = Fetch(port_, "GET", "/sessions/" + id);
  EXPECT_EQ(JsonReader::Parse(status.body).find("sim_time")->as_number(),
            100.0);
}

TEST_F(ControlPlaneTest, PerturbedForkDivergesWhileBaseStaysPinned) {
  const ClientResponse created =
      Fetch(port_, "POST", "/sessions", ConfigToJson(SteadyConfig()));
  ASSERT_EQ(created.status, 201);
  const std::string id = std::to_string(static_cast<std::uint64_t>(
      JsonReader::Parse(created.body).find("id")->as_number()));
  ASSERT_EQ(Fetch(port_, "POST", "/sessions/" + id + "/advance",
                  "{\"until\":100}")
                .status,
            200);

  const ClientResponse plain = Fetch(
      port_, "POST", "/sessions/" + id + "/fork",
      "{\"perturb\":{\"kind\":\"none\"}}");
  const ClientResponse perturbed = Fetch(
      port_, "POST", "/sessions/" + id + "/fork",
      "{\"perturb\":{\"kind\":\"arrival_rate\",\"factor\":4.0}}");
  ASSERT_EQ(plain.status, 200);
  ASSERT_EQ(perturbed.status, 200) << perturbed.body;
  const JsonValue plain_report = JsonReader::Parse(plain.body);
  const JsonValue perturbed_report = JsonReader::Parse(perturbed.body);
  // The unperturbed twin is identical across both forks...
  const JsonValue& base_a = *plain_report.find("base");
  const JsonValue& base_b = *perturbed_report.find("base");
  EXPECT_EQ(base_a.find("events_processed")->as_number(),
            base_b.find("events_processed")->as_number());
  EXPECT_EQ(base_a.find("jct")->find("mean")->as_number(),
            base_b.find("jct")->find("mean")->as_number());
  // ...while the 4x-load what-if diverges from its own base.
  const JsonValue& whatif = *perturbed_report.find("whatif");
  EXPECT_NE(whatif.find("events_processed")->as_number(),
            base_b.find("events_processed")->as_number());
  EXPECT_NE(perturbed_report.find("delta")->find("jct_mean")->as_number(),
            0.0);
  // Node-failure perturbation also diverges and reports the dead node.
  const ClientResponse crashed = Fetch(
      port_, "POST", "/sessions/" + id + "/fork",
      "{\"perturb\":{\"kind\":\"node_failure\",\"node\":3}}");
  ASSERT_EQ(crashed.status, 200) << crashed.body;
  const JsonValue crash_report = JsonReader::Parse(crashed.body);
  EXPECT_EQ(
      crash_report.find("whatif")->find("nodes_failed")->as_number(), 1.0);
  EXPECT_EQ(crash_report.find("base")->find("nodes_failed")->as_number(),
            0.0);
}

TEST_F(ControlPlaneTest, SessionSnapshotLandsOnDiskAndParses) {
  const ClientResponse created =
      Fetch(port_, "POST", "/sessions", ConfigToJson(SteadyConfig()));
  ASSERT_EQ(created.status, 201);
  const std::string id = std::to_string(static_cast<std::uint64_t>(
      JsonReader::Parse(created.body).find("id")->as_number()));
  ASSERT_EQ(Fetch(port_, "POST", "/sessions/" + id + "/advance",
                  "{\"until\":50}")
                .status,
            200);
  const ClientResponse snapshot =
      Fetch(port_, "POST", "/sessions/" + id + "/snapshot");
  ASSERT_EQ(snapshot.status, 201) << snapshot.body;
  const std::string path =
      JsonReader::Parse(snapshot.body).find("path")->as_string();
  // The file is a valid snap:: snapshot taken at the session boundary.
  snap::SnapshotReader reader(snap::ReadFile(path));
  EXPECT_EQ(reader.sim_time(), 50.0);
}

TEST_F(ControlPlaneTest, SessionLifecycleErrorsAreClean) {
  EXPECT_EQ(Fetch(port_, "GET", "/sessions/77").status, 404);
  EXPECT_EQ(Fetch(port_, "DELETE", "/sessions/77").status, 404);
  // Tracing sessions are rejected up front (save() cannot serialize them).
  ExperimentConfig traced = SteadyConfig();
  traced.tracing.enabled = true;
  const ClientResponse rejected =
      Fetch(port_, "POST", "/sessions", ConfigToJson(traced));
  EXPECT_EQ(rejected.status, 400);
  // advance without a horizon is a 400, not a hang.
  const ClientResponse created =
      Fetch(port_, "POST", "/sessions", ConfigToJson(SteadyConfig()));
  const std::string id = std::to_string(static_cast<std::uint64_t>(
      JsonReader::Parse(created.body).find("id")->as_number()));
  EXPECT_EQ(
      Fetch(port_, "POST", "/sessions/" + id + "/advance", "{}").status,
      400);
  // Destroy, then every follow-up is 404.
  EXPECT_EQ(Fetch(port_, "DELETE", "/sessions/" + id).status, 204);
  EXPECT_EQ(Fetch(port_, "GET", "/sessions/" + id).status, 404);
}

// Regression: acquire() must take the session lock under the registry lock,
// or a concurrent destroy() can free the Session between lookup and lock
// (use-after-free on the mutex).  TSan/ASan flag the old interleaving.
TEST(SessionServiceRace, ConcurrentDestroyAndStatusIsSafe) {
  SessionService sessions(::testing::TempDir() + "svc_race_snaps");
  for (int round = 0; round < 16; ++round) {
    const std::uint64_t id = sessions.create(SteadyConfig());
    std::thread poller([&sessions, id] {
      for (int i = 0; i < 64; ++i) {
        try {
          (void)sessions.status(id);
        } catch (const std::out_of_range&) {
          return;  // destroyed under us — the expected end
        } catch (const SessionBusy&) {
        }
      }
    });
    std::thread destroyer([&sessions, id] {
      for (;;) {
        try {
          sessions.destroy(id);
          return;
        } catch (const SessionBusy&) {
          std::this_thread::yield();  // an op is in flight; retry
        }
      }
    });
    poller.join();
    destroyer.join();
    EXPECT_EQ(sessions.open_sessions(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Cancel, trace, and hostile traffic
// ---------------------------------------------------------------------------

TEST_F(ControlPlaneTest, CancelStopsAQueuedOrRunningExperiment) {
  // A config big enough to outlive the DELETE round-trip.
  ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  config.trace.jobs_per_app = 400;
  config.num_nodes = 40;
  const std::string id = Submit(config);
  const ClientResponse cancel =
      Fetch(port_, "DELETE", "/experiments/" + id);
  EXPECT_EQ(cancel.status, 202) << cancel.body;
  const JsonValue done = WaitForTerminal(id);
  // Either the cancel landed mid-run, or the run beat it to the finish.
  const std::string& state = done.find("state")->as_string();
  EXPECT_TRUE(state == "cancelled" || state == "done") << state;
  if (state == "cancelled") {
    EXPECT_EQ(Fetch(port_, "GET", "/experiments/" + id + "/metrics").status,
              409);
  }
  // DELETE on a terminal job reclaims it (200 deleted); afterwards the id
  // is gone, so follow-ups — including a repeat DELETE — are 404.
  const ClientResponse removed = Fetch(port_, "DELETE", "/experiments/" + id);
  EXPECT_EQ(removed.status, 200) << removed.body;
  EXPECT_NE(removed.body.find("\"deleted\""), std::string::npos);
  EXPECT_EQ(Fetch(port_, "GET", "/experiments/" + id).status, 404);
  EXPECT_EQ(Fetch(port_, "DELETE", "/experiments/" + id).status, 404);
}

TEST_F(ControlPlaneTest, TraceEndpointServesChromeTraceJson) {
  ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  config.tracing.enabled = true;
  const std::string id = Submit(config);
  const JsonValue done = WaitForTerminal(id);
  ASSERT_EQ(done.find("state")->as_string(), "done");
  const ClientResponse trace =
      Fetch(port_, "GET", "/experiments/" + id + "/trace");
  ASSERT_EQ(trace.status, 200);
  // The export is valid JSON with the Chrome trace-event shape.
  const JsonValue document = JsonReader::Parse(trace.body);
  const JsonValue* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->items().size(), 0u);
  // An untraced run 404s instead of serving an empty document.
  const std::string plain = Submit(SmallConfig(ManagerKind::kCustody));
  ASSERT_EQ(WaitForTerminal(plain).find("state")->as_string(), "done");
  EXPECT_EQ(Fetch(port_, "GET", "/experiments/" + plain + "/trace").status,
            404);
}

TEST_F(ControlPlaneTest, HostileTrafficGetsCleanErrors) {
  // Malformed JSON → 400 with the parse offset.
  const ClientResponse bad_json =
      Fetch(port_, "POST", "/experiments", "{\"num_nodes\":");
  EXPECT_EQ(bad_json.status, 400);
  EXPECT_NE(JsonReader::Parse(bad_json.body).find("offset"), nullptr);
  // Unknown routes and wrong methods.
  EXPECT_EQ(Fetch(port_, "GET", "/nope").status, 404);
  EXPECT_EQ(Fetch(port_, "DELETE", "/healthz").status, 405);
  EXPECT_EQ(Fetch(port_, "GET", "/experiments/abc").status, 404);
  // Truncated raw request → 400, server keeps serving.
  EXPECT_NE(SendRaw(port_, "POST /experiments HTT").find("400"),
            std::string::npos);
  EXPECT_EQ(Fetch(port_, "GET", "/healthz").status, 200);
}

}  // namespace
}  // namespace custody::svc
