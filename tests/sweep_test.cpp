// The sweep determinism suite (the harness refactor's contract):
//
//  - RunSweep at 1, 2 and 8 threads returns ExperimentResults that are
//    field-for-field identical (exact double compare) to serial
//    RunExperiment calls, in input order.
//  - CompareManagers on the shared SubstrateSnapshot matches the
//    pre-refactor two-RunExperiment-call path exactly.
//  - ValidateConfig rejects every bad knob with the field named in the
//    std::invalid_argument message, before any substrate is built.
//
// Wall-clock diagnostic fields (round_wall moments, *_wall_seconds,
// net_stats.wall_seconds) measure real time, not simulated behaviour, and
// are the only fields excluded from the exact comparison.
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "workload/harness.h"
#include "workload/sweep.h"

namespace custody::workload {
namespace {

ExperimentConfig SmallConfig(ManagerKind manager,
                             WorkloadKind kind = WorkloadKind::kWordCount,
                             std::size_t nodes = 20, std::uint64_t seed = 42) {
  ExperimentConfig config;
  config.num_nodes = nodes;
  config.executors_per_node = 2;
  config.manager = manager;
  config.kinds = {kind};
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 5;
  config.trace.files_per_kind = 4;
  config.seed = seed;
  return config;
}

void ExpectSummariesIdentical(const Summary& a, const Summary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.p25, b.p25);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p75, b.p75);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.max, b.max);
}

/// Exact comparison of every deterministic field of two results.
void ExpectResultsIdentical(const ExperimentResult& a,
                            const ExperimentResult& b) {
  EXPECT_EQ(a.manager_name, b.manager_name);
  {
    SCOPED_TRACE("job_locality");
    ExpectSummariesIdentical(a.job_locality, b.job_locality);
  }
  EXPECT_EQ(a.overall_task_locality_percent, b.overall_task_locality_percent);
  EXPECT_EQ(a.local_job_percent, b.local_job_percent);
  {
    SCOPED_TRACE("jct");
    ExpectSummariesIdentical(a.jct, b.jct);
  }
  {
    SCOPED_TRACE("input_stage");
    ExpectSummariesIdentical(a.input_stage, b.input_stage);
  }
  {
    SCOPED_TRACE("sched_delay");
    ExpectSummariesIdentical(a.sched_delay, b.sched_delay);
  }
  ASSERT_EQ(a.per_app_local_job_fraction.size(),
            b.per_app_local_job_fraction.size());
  for (std::size_t i = 0; i < a.per_app_local_job_fraction.size(); ++i) {
    EXPECT_EQ(a.per_app_local_job_fraction[i], b.per_app_local_job_fraction[i])
        << "per_app_local_job_fraction[" << i << "]";
  }
  EXPECT_EQ(a.manager_stats.allocation_rounds,
            b.manager_stats.allocation_rounds);
  EXPECT_EQ(a.manager_stats.executors_granted,
            b.manager_stats.executors_granted);
  EXPECT_EQ(a.manager_stats.executors_released,
            b.manager_stats.executors_released);
  EXPECT_EQ(a.manager_stats.offers_made, b.manager_stats.offers_made);
  EXPECT_EQ(a.manager_stats.offers_rejected, b.manager_stats.offers_rejected);
  EXPECT_EQ(a.manager_stats.executors_scanned,
            b.manager_stats.executors_scanned);
  EXPECT_EQ(a.manager_stats.apps_considered, b.manager_stats.apps_considered);
  // round_wall values are wall-clock; only the round count is simulated.
  EXPECT_EQ(a.round_wall.count, b.round_wall.count);
  EXPECT_EQ(a.round_yield_fraction, b.round_yield_fraction);
  EXPECT_EQ(a.net_stats.recomputes_requested, b.net_stats.recomputes_requested);
  EXPECT_EQ(a.net_stats.recomputes_run, b.net_stats.recomputes_run);
  EXPECT_EQ(a.net_stats.recomputes_batched, b.net_stats.recomputes_batched);
  EXPECT_EQ(a.net_stats.flows_scanned, b.net_stats.flows_scanned);
  EXPECT_EQ(a.net_stats.links_scanned, b.net_stats.links_scanned);
  EXPECT_EQ(a.net_stats.rounds, b.net_stats.rounds);
  EXPECT_EQ(a.net_bytes_delivered, b.net_bytes_delivered);
  EXPECT_EQ(a.cache_insertions, b.cache_insertions);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.speculative_launches, b.speculative_launches);
  EXPECT_EQ(a.speculative_wins, b.speculative_wins);
  EXPECT_EQ(a.nodes_failed, b.nodes_failed);
  EXPECT_EQ(a.launches_local, b.launches_local);
  EXPECT_EQ(a.launches_covered_busy, b.launches_covered_busy);
  EXPECT_EQ(a.launches_uncovered, b.launches_uncovered);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
}

/// A mixed grid: every manager kind, every workload, varied sizes, seeds,
/// and the cache/speculation/failure extensions.
std::vector<ExperimentConfig> MixedGrid() {
  std::vector<ExperimentConfig> grid;
  grid.push_back(SmallConfig(ManagerKind::kCustody));
  grid.push_back(SmallConfig(ManagerKind::kStandalone, WorkloadKind::kSort, 25));
  grid.push_back(SmallConfig(ManagerKind::kPool, WorkloadKind::kPageRank));
  grid.push_back(SmallConfig(ManagerKind::kOffer));
  grid.push_back(
      SmallConfig(ManagerKind::kCustody, WorkloadKind::kSort, 30, 7));
  auto cached = SmallConfig(ManagerKind::kCustody);
  cached.cache_mb_per_node = 512.0;
  cached.trace.zipf_skew = 1.2;
  grid.push_back(std::move(cached));
  auto chaotic = SmallConfig(ManagerKind::kCustody);
  chaotic.node_failures = 2;
  chaotic.failure_start = 10.0;
  chaotic.failure_interval = 15.0;
  chaotic.slow_node_fraction = 0.2;
  chaotic.speculation = true;
  grid.push_back(std::move(chaotic));
  return grid;
}

TEST(SweepDeterminism, MatchesSerialRunExperimentAtAnyThreadCount) {
  const std::vector<ExperimentConfig> grid = MixedGrid();
  std::vector<ExperimentResult> serial;
  for (const ExperimentConfig& config : grid) {
    serial.push_back(RunExperiment(config));
  }
  for (const int threads : {1, 2, 8}) {
    SweepOptions options;
    options.threads = threads;
    const std::vector<ExperimentResult> swept = RunSweep(grid, options);
    ASSERT_EQ(swept.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " config=" +
                   std::to_string(i));
      ExpectResultsIdentical(serial[i], swept[i]);
    }
  }
}

TEST(SweepDeterminism, ResultsComeBackInInputOrder) {
  std::vector<ExperimentConfig> grid;
  grid.push_back(SmallConfig(ManagerKind::kStandalone));
  grid.push_back(SmallConfig(ManagerKind::kCustody));
  grid.push_back(SmallConfig(ManagerKind::kPool));
  grid.push_back(SmallConfig(ManagerKind::kOffer));
  SweepOptions options;
  options.threads = 4;
  const auto results = RunSweep(grid, options);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].manager_name, "standalone");
  EXPECT_EQ(results[1].manager_name, "custody");
  EXPECT_EQ(results[2].manager_name, "pool");
  EXPECT_EQ(results[3].manager_name, "offer");
}

TEST(SweepDeterminism, ComparisonSweepMatchesCompareManagers) {
  std::vector<ExperimentConfig> grid;
  grid.push_back(SmallConfig(ManagerKind::kCustody));
  grid.push_back(SmallConfig(ManagerKind::kCustody, WorkloadKind::kSort, 25));
  SweepOptions options;
  options.threads = 2;
  const std::vector<Comparison> swept = RunComparisonSweep(grid, options);
  ASSERT_EQ(swept.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE("config=" + std::to_string(i));
    const Comparison direct = CompareManagers(grid[i]);
    ExpectResultsIdentical(direct.baseline, swept[i].baseline);
    ExpectResultsIdentical(direct.custody, swept[i].custody);
  }
}

TEST(SweepDeterminism, SharedSnapshotMatchesPreRefactorTwoCallPath) {
  // CompareManagers now builds the substrate snapshot once; the result
  // must stay bit-identical to setting config.manager and calling
  // RunExperiment twice (the pre-refactor path).
  ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  config.kinds = {WorkloadKind::kWordCount, WorkloadKind::kSort};
  const Comparison shared = CompareManagers(config);
  config.manager = ManagerKind::kStandalone;
  const ExperimentResult baseline = RunExperiment(config);
  config.manager = ManagerKind::kCustody;
  const ExperimentResult custody = RunExperiment(config);
  ExpectResultsIdentical(baseline, shared.baseline);
  ExpectResultsIdentical(custody, shared.custody);
}

TEST(SweepDeterminism, SnapshotBuildIsDeterministic) {
  const ExperimentConfig config =
      SmallConfig(ManagerKind::kCustody, WorkloadKind::kSort, 25, 9);
  const SubstrateSnapshot a = SubstrateSnapshot::Build(config);
  const SubstrateSnapshot b = SubstrateSnapshot::Build(config);
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (std::size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i].time, b.trace()[i].time);
    EXPECT_EQ(a.trace()[i].app_index, b.trace()[i].app_index);
    EXPECT_EQ(a.trace()[i].kind, b.trace()[i].kind);
    EXPECT_EQ(a.trace()[i].file_index, b.trace()[i].file_index);
  }
  ASSERT_EQ(a.dataset_plans().size(), b.dataset_plans().size());
  for (std::size_t k = 0; k < a.dataset_plans().size(); ++k) {
    ASSERT_EQ(a.dataset_plans()[k].files.size(),
              b.dataset_plans()[k].files.size());
    for (std::size_t f = 0; f < a.dataset_plans()[k].files.size(); ++f) {
      EXPECT_EQ(a.dataset_plans()[k].files[f].bytes,
                b.dataset_plans()[k].files[f].bytes);
      EXPECT_EQ(a.dataset_plans()[k].files[f].path,
                b.dataset_plans()[k].files[f].path);
    }
  }
}

TEST(Sweep, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(RunSweep({}).empty());
  EXPECT_TRUE(RunComparisonSweep({}).empty());
}

TEST(Sweep, PropagatesRunFailuresByInputIndex) {
  // Validation happens before any thread spawns: a bad config anywhere in
  // the grid throws without running the good ones.
  std::vector<ExperimentConfig> grid;
  grid.push_back(SmallConfig(ManagerKind::kCustody));
  grid.push_back(SmallConfig(ManagerKind::kCustody));
  grid[1].num_nodes = 0;
  SweepOptions options;
  options.threads = 2;
  EXPECT_THROW(RunSweep(grid, options), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RunControl: observing a run never changes it; cancel stops it.
// ---------------------------------------------------------------------------

TEST(RunControl, ObserverAttachedIsBitIdenticalToPlainRun) {
  // The svc layer polls progress while an experiment runs.  The contract:
  // attaching a RunControl with an on_progress callback produces exactly
  // the result the no-control path produces, for every manager.
  for (const ManagerKind manager :
       {ManagerKind::kCustody, ManagerKind::kStandalone, ManagerKind::kPool,
        ManagerKind::kOffer}) {
    SCOPED_TRACE(ManagerName(manager));
    const ExperimentConfig config = SmallConfig(manager);
    const SubstrateSnapshot snapshot = SubstrateSnapshot::Build(config);
    const ExperimentResult plain = RunOnSnapshot(snapshot, manager);
    RunControl control;
    control.progress_every = 64;  // small batches: many callbacks
    std::uint64_t callbacks = 0;
    RunProgress last;
    control.on_progress = [&](const RunProgress& p) {
      ++callbacks;
      // Progress is monotone in events and sim time.
      EXPECT_GE(p.events_processed, last.events_processed);
      EXPECT_GE(p.sim_time, last.sim_time);
      last = p;
    };
    const ExperimentResult observed = RunOnSnapshot(snapshot, manager,
                                                    &control);
    EXPECT_GT(callbacks, 0u);
    EXPECT_EQ(last.events_processed, observed.events_processed);
    EXPECT_EQ(last.jobs_completed, observed.jobs_completed);
    ExpectResultsIdentical(plain, observed);
  }
}

TEST(RunControl, ObserverIsBitIdenticalOnCheckpointingRuns) {
  // The checkpoint loop is a separate code path in RunOnSnapshot; pin the
  // observer contract there too.
  ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  config.checkpoint.every = 25.0;
  config.checkpoint.directory = ::testing::TempDir();
  const SubstrateSnapshot snapshot = SubstrateSnapshot::Build(config);
  const ExperimentResult plain = RunOnSnapshot(snapshot, config.manager);
  RunControl control;
  std::uint64_t callbacks = 0;
  control.on_progress = [&](const RunProgress&) { ++callbacks; };
  const ExperimentResult observed =
      RunOnSnapshot(snapshot, config.manager, &control);
  EXPECT_GT(callbacks, 0u);
  ExpectResultsIdentical(plain, observed);
}

TEST(RunControl, CancelUpFrontThrowsRunCancelled) {
  const ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  RunControl control;
  control.request_cancel();
  EXPECT_THROW(RunExperiment(config, &control), RunCancelled);
}

TEST(RunControl, CancelFromProgressCallbackStopsMidRun) {
  const ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  const ExperimentResult full = RunExperiment(config);
  RunControl control;
  control.progress_every = 64;
  std::uint64_t events_at_cancel = 0;
  control.on_progress = [&](const RunProgress& p) {
    events_at_cancel = p.events_processed;
    control.request_cancel();
  };
  EXPECT_THROW(RunExperiment(config, &control), RunCancelled);
  // The cancel landed at the first batch boundary, well before the end.
  EXPECT_GT(events_at_cancel, 0u);
  EXPECT_LT(events_at_cancel, full.events_processed);
}

// ---------------------------------------------------------------------------
// ValidateConfig
// ---------------------------------------------------------------------------

void ExpectInvalid(ExperimentConfig config, const std::string& field) {
  try {
    ValidateConfig(config);
    FAIL() << "expected std::invalid_argument naming " << field;
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(field), std::string::npos)
        << "message \"" << error.what() << "\" does not name " << field;
  }
}

TEST(ValidateConfig, AcceptsTheDefaults) {
  EXPECT_NO_THROW(ValidateConfig(ExperimentConfig{}));
  EXPECT_NO_THROW(ValidateConfig(SmallConfig(ManagerKind::kPool)));
}

TEST(ValidateConfig, RejectsEveryBadKnobWithTheFieldNamed) {
  const ExperimentConfig good = SmallConfig(ManagerKind::kCustody);
  auto with = [&good](auto mutate) {
    ExperimentConfig config = good;
    mutate(config);
    return config;
  };
  ExpectInvalid(with([](auto& c) { c.num_nodes = 0; }), "num_nodes");
  ExpectInvalid(with([](auto& c) { c.executors_per_node = 0; }),
                "executors_per_node");
  ExpectInvalid(with([](auto& c) { c.executors_per_node = -3; }),
                "executors_per_node");
  ExpectInvalid(with([](auto& c) { c.disk_mbps = -1.0; }), "disk_mbps");
  ExpectInvalid(with([](auto& c) { c.uplink_gbps = 0.0; }), "uplink_gbps");
  ExpectInvalid(with([](auto& c) { c.downlink_gbps = -2.0; }),
                "downlink_gbps");
  ExpectInvalid(with([](auto& c) { c.core_gbps = -1.0; }), "core_gbps");
  ExpectInvalid(with([](auto& c) {
                  c.incremental_network = false;
                  c.component_partitioned_network = true;
                }),
                "component_partitioned_network");
  ExpectInvalid(with([](auto& c) { c.block_mb = 0.0; }), "block_mb");
  ExpectInvalid(with([](auto& c) { c.replication = 0; }), "replication");
  ExpectInvalid(with([](auto& c) { c.cache_mb_per_node = -1.0; }),
                "cache_mb_per_node");
  ExpectInvalid(with([](auto& c) { c.dataset.hot_fraction = 1.5; }),
                "hot_fraction");
  ExpectInvalid(
      with([](auto& c) { c.dataset.popularity_extra_replicas = -1; }),
      "popularity_extra_replicas");
  ExpectInvalid(with([](auto& c) { c.shuffle_fan_in = 0; }), "shuffle_fan_in");
  ExpectInvalid(with([](auto& c) {
                  c.speculation = true;
                  c.speculation_multiplier = 1.0;
                }),
                "speculation_multiplier");
  ExpectInvalid(with([](auto& c) { c.slow_node_fraction = -0.1; }),
                "slow_node_fraction");
  ExpectInvalid(with([](auto& c) { c.slow_node_fraction = 1.1; }),
                "slow_node_fraction");
  ExpectInvalid(with([](auto& c) { c.slow_node_factor = 0.0; }),
                "slow_node_factor");
  ExpectInvalid(with([](auto& c) { c.node_failures = -1; }), "node_failures");
  ExpectInvalid(with([](auto& c) {
                  c.node_failures = 1;
                  c.failure_start = -5.0;
                }),
                "failure_start");
  ExpectInvalid(with([](auto& c) {
                  c.node_failures = 3;
                  c.failure_interval = 0.0;
                }),
                "failure_interval");
  ExpectInvalid(with([](auto& c) { c.kinds.clear(); }), "kinds");
  ExpectInvalid(with([](auto& c) { c.trace.num_apps = 0; }), "num_apps");
  ExpectInvalid(with([](auto& c) { c.trace.num_apps = -4; }), "num_apps");
  ExpectInvalid(with([](auto& c) { c.trace.jobs_per_app = 0; }),
                "jobs_per_app");
  ExpectInvalid(with([](auto& c) { c.trace.mean_interarrival = 0.0; }),
                "mean_interarrival");
  ExpectInvalid(with([](auto& c) { c.trace.zipf_skew = -0.5; }), "zipf_skew");
  ExpectInvalid(with([](auto& c) { c.trace.files_per_kind = 0; }),
                "files_per_kind");
}

TEST(ValidateConfig, RejectsBadSteadyStateKnobsWithTheFieldNamed) {
  const ExperimentConfig good = SmallConfig(ManagerKind::kCustody);
  auto with = [&good](auto mutate) {
    ExperimentConfig config = good;
    mutate(config);
    return config;
  };
  // The steady-state block validates whether or not the mode is enabled, so
  // a sweep grid with a typoed steady field fails fast.
  ExpectInvalid(with([](auto& c) { c.steady.warmup = -1.0; }),
                "steady.warmup");
  ExpectInvalid(with([](auto& c) { c.steady.diurnal_amplitude = -0.2; }),
                "steady.diurnal_amplitude");
  ExpectInvalid(with([](auto& c) { c.steady.diurnal_amplitude = 1.0; }),
                "steady.diurnal_amplitude");
  ExpectInvalid(with([](auto& c) {
                  c.steady.diurnal_amplitude = 0.5;
                  c.steady.diurnal_period = 0.0;
                }),
                "steady.diurnal_period");
  ExpectInvalid(with([](auto& c) { c.steady.materialize_submissions = true; }),
                "steady.materialize_submissions");
  // Retiring jobs while exact metrics keep per-job records would not bound
  // memory — the combination is rejected, not silently accepted.
  ExpectInvalid(with([](auto& c) {
                  c.steady.enabled = true;
                  c.steady.retire_jobs = true;
                  c.steady.streaming_metrics = false;
                }),
                "steady.retire_jobs");
  // Zero arrival rate is caught by the shared trace validation.
  ExpectInvalid(with([](auto& c) {
                  c.steady.enabled = true;
                  c.trace.mean_interarrival = 0.0;
                }),
                "mean_interarrival");
  // The steady defaults themselves are valid, enabled or not.
  EXPECT_NO_THROW(ValidateConfig(with([](auto& c) {
    c.steady.enabled = true;
  })));
  EXPECT_NO_THROW(ValidateConfig(with([](auto& c) {
    c.steady.enabled = true;
    c.steady.diurnal_amplitude = 0.5;
    c.steady.warmup = 100.0;
  })));
}

TEST(ValidateConfig, RunExperimentValidatesUpFront) {
  ExperimentConfig config = SmallConfig(ManagerKind::kCustody);
  config.replication = 0;
  EXPECT_THROW(RunExperiment(config), std::invalid_argument);
  config = SmallConfig(ManagerKind::kCustody);
  config.trace.num_apps = -1;
  EXPECT_THROW(RunExperiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace custody::workload
