// Tests for trace persistence (SaveTrace/LoadTrace round-trips) and the
// heterogeneous node-speed knob.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cluster/cluster.h"
#include "workload/experiment.h"
#include "workload/trace.h"

namespace custody::workload {
namespace {

TEST(TraceIo, RoundTripPreservesEverySubmission) {
  Rng rng(21);
  TraceConfig config;
  config.num_apps = 3;
  config.jobs_per_app = 7;
  const auto original = GenerateMixedTrace(
      {WorkloadKind::kPageRank, WorkloadKind::kSort}, config, rng);

  const std::string path = ::testing::TempDir() + "/custody_trace.csv";
  SaveTrace(original, path);
  const auto loaded = LoadTrace(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded[i].time, original[i].time, 1e-4);
    EXPECT_EQ(loaded[i].app_index, original[i].app_index);
    EXPECT_EQ(loaded[i].kind, original[i].kind);
    EXPECT_EQ(loaded[i].file_index, original[i].file_index);
  }
}

TEST(TraceIo, LoadSortsByTime) {
  const std::string path = ::testing::TempDir() + "/custody_trace2.csv";
  {
    std::ofstream out(path);
    out << "time,app,kind,file\n";
    out << "9.5,1,Sort,2\n";
    out << "1.25,0,WordCount,0\n";
  }
  const auto trace = LoadTrace(path);
  std::remove(path.c_str());
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[0].time, 1.25);
  EXPECT_EQ(trace[0].kind, WorkloadKind::kWordCount);
  EXPECT_EQ(trace[1].app_index, 1);
}

TEST(TraceIo, RejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "/custody_trace3.csv";
  auto write = [&path](const std::string& content) {
    std::ofstream out(path);
    out << content;
  };
  write("wrong header\n");
  EXPECT_THROW(LoadTrace(path), std::runtime_error);
  write("time,app,kind,file\n1.0,0,NotAWorkload,0\n");
  EXPECT_THROW(LoadTrace(path), std::runtime_error);
  write("time,app,kind,file\n1.0,0,Sort\n");
  EXPECT_THROW(LoadTrace(path), std::runtime_error);
  write("time,app,kind,file\nxyz,0,Sort,0\n");
  EXPECT_THROW(LoadTrace(path), std::runtime_error);
  write("time,app,kind,file\n-1.0,0,Sort,0\n");
  EXPECT_THROW(LoadTrace(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(LoadTrace("/nonexistent/trace.csv"), std::runtime_error);
}

// ---------- heterogeneous node speeds ----------------------------------------

TEST(NodeSpeed, DefaultsToNominalAndValidates) {
  cluster::Cluster cluster(4, cluster::WorkerConfig{});
  EXPECT_DOUBLE_EQ(cluster.node_speed(NodeId(0)), 1.0);
  cluster.set_node_speed(NodeId(1), 0.25);
  EXPECT_DOUBLE_EQ(cluster.node_speed(NodeId(1)), 0.25);
  EXPECT_THROW(cluster.set_node_speed(NodeId(9), 1.0), std::out_of_range);
  EXPECT_THROW(cluster.set_node_speed(NodeId(1), 0.0), std::invalid_argument);
}

TEST(NodeSpeed, SlowNodesStretchCompletionTimes) {
  ExperimentConfig config;
  config.num_nodes = 16;
  config.manager = ManagerKind::kCustody;
  config.kinds = {WorkloadKind::kWordCount};
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 4;
  config.trace.files_per_kind = 3;
  const auto uniform = RunExperiment(config);
  config.slow_node_fraction = 0.25;
  config.slow_node_factor = 5.0;
  const auto hetero = RunExperiment(config);
  EXPECT_EQ(hetero.jobs_completed, uniform.jobs_completed);
  EXPECT_GT(hetero.jct.max, uniform.jct.max);
}

TEST(NodeSpeed, SpeculationRecoversSomeOfTheStretch) {
  ExperimentConfig config;
  config.num_nodes = 20;
  config.manager = ManagerKind::kCustody;
  config.kinds = {WorkloadKind::kWordCount};
  config.trace.num_apps = 3;
  config.trace.jobs_per_app = 6;
  config.trace.files_per_kind = 4;
  config.slow_node_fraction = 0.2;
  config.slow_node_factor = 5.0;
  const auto plain = RunExperiment(config);
  config.speculation = true;
  const auto spec = RunExperiment(config);
  EXPECT_GT(spec.speculative_wins, 0);
  EXPECT_LT(spec.jct.max, plain.jct.max);
}

}  // namespace
}  // namespace custody::workload
