// Tests for the workload generators, datasets, traces, and the experiment
// runner's determinism contract.
#include <gtest/gtest.h>

#include <set>

#include "common/units.h"
#include "workload/experiment.h"
#include "workload/trace.h"
#include "workload/workloads.h"

namespace custody::workload {
namespace {

using custody::units::GB;
using custody::units::MB;

dfs::Dfs MakeDfs(std::size_t nodes = 20) {
  dfs::DfsConfig c;
  c.num_nodes = nodes;
  return dfs::Dfs(c, Rng(3));
}

TEST(Workloads, Names) {
  EXPECT_STREQ(WorkloadName(WorkloadKind::kPageRank), "PageRank");
  EXPECT_STREQ(WorkloadName(WorkloadKind::kWordCount), "WordCount");
  EXPECT_STREQ(WorkloadName(WorkloadKind::kSort), "Sort");
}

TEST(Dataset, FileSizesMatchThePaper) {
  auto dfs = MakeDfs();
  Rng rng(1);
  DatasetConfig config;
  config.files_per_kind = 6;
  const auto pr = BuildDataset(dfs, WorkloadKind::kPageRank, config, rng);
  for (FileId f : pr.files) {
    EXPECT_DOUBLE_EQ(dfs.namenode().file(f).bytes, GB(1.0));
  }
  const auto wc = BuildDataset(dfs, WorkloadKind::kWordCount, config, rng);
  for (FileId f : wc.files) {
    EXPECT_GE(dfs.namenode().file(f).bytes, GB(4.0));
    EXPECT_LE(dfs.namenode().file(f).bytes, GB(8.0));
  }
  const auto sort = BuildDataset(dfs, WorkloadKind::kSort, config, rng);
  for (FileId f : sort.files) {
    EXPECT_GE(dfs.namenode().file(f).bytes, GB(1.0));
    EXPECT_LE(dfs.namenode().file(f).bytes, GB(8.0));
  }
}

TEST(Dataset, PopularityReplicationBoostsHotFiles) {
  auto dfs = MakeDfs();
  Rng rng(2);
  DatasetConfig config;
  config.files_per_kind = 8;
  config.popularity_replication = true;
  config.popularity_extra_replicas = 2;
  config.hot_fraction = 0.25;  // 2 of 8 files are hot
  const auto ds = BuildDataset(dfs, WorkloadKind::kPageRank, config, rng);
  for (std::size_t i = 0; i < ds.files.size(); ++i) {
    const auto replicas =
        dfs.locations(dfs.blocks_of(ds.files[i]).front()).size();
    EXPECT_EQ(replicas, i < 2 ? 5u : 3u) << "file " << i;
  }
}

TEST(Dataset, HotFileCountClampsAtTheBoundaries) {
  // Regression for the ceil-based hot count: binary fractions like 9/14
  // land an ulp above the exact product (9/14 · 42 = 27.000000000000004),
  // so an unguarded ceil marked one extra file hot; hot_fraction = 1.0
  // must cover exactly the whole catalog and 0.0 must mark nothing.
  Rng rng(7);
  const auto hot_count = [&rng](double fraction, int files) {
    DatasetConfig config;
    config.files_per_kind = files;
    config.hot_fraction = fraction;
    config.popularity_replication = true;  // hot flags are only set under it
    int hot = 0;
    for (const FileSpec& spec :
         PlanDataset(WorkloadKind::kPageRank, config, rng)) {
      hot += spec.hot ? 1 : 0;
    }
    return hot;
  };
  EXPECT_EQ(hot_count(0.0, 8), 0);
  EXPECT_EQ(hot_count(1.0, 8), 8);
  EXPECT_EQ(hot_count(9.0 / 14.0, 42), 27);  // product rounds above 27
  EXPECT_EQ(hot_count(1.0 / 3.0, 9), 3);
  EXPECT_EQ(hot_count(1.0 / 3.0, 7), 3);  // ceil(2.33) = 3: round up, not down
  EXPECT_EQ(hot_count(0.01, 5), 1);       // small fractions still mark a file
}

TEST(JobSpecs, WordCountShape) {
  auto dfs = MakeDfs();
  Rng rng(4);
  DatasetConfig config;
  config.files_per_kind = 1;
  const auto ds = BuildDataset(dfs, WorkloadKind::kWordCount, config, rng);
  const auto spec =
      MakeJobSpec(WorkloadKind::kWordCount, ds.files[0], dfs, WorkloadParams{});
  const int blocks = static_cast<int>(dfs.blocks_of(ds.files[0]).size());
  ASSERT_EQ(spec.downstream.size(), 1u);  // map + one reduce
  EXPECT_EQ(spec.downstream[0].num_tasks, std::max(1, blocks / 8));
  // Network-light: shuffle is a few percent of the input.
  const double input = dfs.namenode().file(ds.files[0]).bytes;
  EXPECT_LT(spec.downstream[0].shuffle_bytes, 0.1 * input);
}

TEST(JobSpecs, SortShufflesEverything) {
  auto dfs = MakeDfs();
  Rng rng(5);
  DatasetConfig config;
  config.files_per_kind = 1;
  const auto ds = BuildDataset(dfs, WorkloadKind::kSort, config, rng);
  const auto spec =
      MakeJobSpec(WorkloadKind::kSort, ds.files[0], dfs, WorkloadParams{});
  const double input = dfs.namenode().file(ds.files[0]).bytes;
  ASSERT_EQ(spec.downstream.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.downstream[0].shuffle_bytes, input);
}

TEST(JobSpecs, PageRankIterates) {
  auto dfs = MakeDfs();
  Rng rng(6);
  DatasetConfig config;
  config.files_per_kind = 1;
  const auto ds = BuildDataset(dfs, WorkloadKind::kPageRank, config, rng);
  WorkloadParams params;
  params.pagerank_iterations = 5;
  const auto spec = MakeJobSpec(WorkloadKind::kPageRank, ds.files[0], dfs,
                                params);
  EXPECT_EQ(spec.downstream.size(), 5u);
  for (const auto& stage : spec.downstream) {
    EXPECT_EQ(stage.num_tasks,
              static_cast<int>(dfs.blocks_of(ds.files[0]).size()));
    EXPECT_GT(stage.shuffle_bytes, 0.0);
  }
}

TEST(Trace, SortedWithCorrectCounts) {
  Rng rng(7);
  TraceConfig config;
  config.num_apps = 3;
  config.jobs_per_app = 5;
  const auto trace = GenerateTrace(WorkloadKind::kSort, config, rng);
  ASSERT_EQ(trace.size(), 15u);
  std::vector<int> per_app(3, 0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time, trace[i].time);
  }
  for (const auto& s : trace) {
    ++per_app[static_cast<std::size_t>(s.app_index)];
    EXPECT_EQ(s.kind, WorkloadKind::kSort);
    EXPECT_LT(s.file_index, static_cast<std::size_t>(config.files_per_kind));
  }
  EXPECT_EQ(per_app, (std::vector<int>{5, 5, 5}));
}

TEST(Trace, MeanInterArrivalApproximatelyRight) {
  Rng rng(8);
  TraceConfig config;
  config.num_apps = 1;
  config.jobs_per_app = 4000;
  config.mean_interarrival = 16.0;
  const auto trace = GenerateTrace(WorkloadKind::kWordCount, config, rng);
  EXPECT_NEAR(trace.back().time / 4000.0, 16.0, 1.0);
}

TEST(Trace, MixedTraceUsesAllKinds) {
  Rng rng(9);
  TraceConfig config;
  config.num_apps = 2;
  config.jobs_per_app = 50;
  const auto trace = GenerateMixedTrace(
      {WorkloadKind::kPageRank, WorkloadKind::kSort}, config, rng);
  std::set<WorkloadKind> kinds;
  for (const auto& s : trace) kinds.insert(s.kind);
  EXPECT_EQ(kinds.size(), 2u);
}

TEST(Trace, RejectsDegenerateConfigs) {
  Rng rng(10);
  TraceConfig config;
  config.num_apps = 0;
  EXPECT_THROW(GenerateTrace(WorkloadKind::kSort, config, rng),
               std::invalid_argument);
  config.num_apps = 1;
  EXPECT_THROW(GenerateMixedTrace({}, config, rng), std::invalid_argument);
}

// ---------- experiment runner ------------------------------------------------

ExperimentConfig SmallExperiment(ManagerKind manager) {
  ExperimentConfig config;
  config.num_nodes = 12;
  config.manager = manager;
  config.kinds = {WorkloadKind::kWordCount};
  config.trace.num_apps = 2;
  config.trace.jobs_per_app = 4;
  config.trace.files_per_kind = 3;
  config.seed = 11;
  return config;
}

TEST(Experiment, CompletesAllJobs) {
  for (ManagerKind m : {ManagerKind::kStandalone, ManagerKind::kCustody,
                        ManagerKind::kOffer}) {
    const auto result = RunExperiment(SmallExperiment(m));
    EXPECT_EQ(result.jobs_completed, 8) << ManagerName(m);
    EXPECT_EQ(result.jct.count, 8u);
    EXPECT_GT(result.makespan, 0.0);
    EXPECT_GT(result.events_processed, 0u);
  }
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = RunExperiment(SmallExperiment(ManagerKind::kCustody));
  const auto b = RunExperiment(SmallExperiment(ManagerKind::kCustody));
  EXPECT_DOUBLE_EQ(a.job_locality.mean, b.job_locality.mean);
  EXPECT_DOUBLE_EQ(a.jct.mean, b.jct.mean);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(Experiment, SeedChangesTheRun) {
  auto config = SmallExperiment(ManagerKind::kCustody);
  const auto a = RunExperiment(config);
  config.seed = 12;
  const auto b = RunExperiment(config);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Experiment, ManagerNameReported) {
  EXPECT_EQ(RunExperiment(SmallExperiment(ManagerKind::kOffer)).manager_name,
            "offer");
  EXPECT_STREQ(ManagerName(ManagerKind::kStandalone), "standalone");
}

TEST(Experiment, OfferManagerTracksRejections) {
  const auto result = RunExperiment(SmallExperiment(ManagerKind::kOffer));
  EXPECT_GT(result.manager_stats.offers_made, 0u);
}

TEST(Experiment, CompareManagersSharesLayout) {
  const auto cmp = CompareManagers(SmallExperiment(ManagerKind::kCustody));
  EXPECT_EQ(cmp.baseline.jobs_completed, cmp.custody.jobs_completed);
  EXPECT_EQ(cmp.baseline.manager_name, "standalone");
  EXPECT_EQ(cmp.custody.manager_name, "custody");
}

TEST(Experiment, RejectsEmptyKinds) {
  auto config = SmallExperiment(ManagerKind::kCustody);
  config.kinds.clear();
  EXPECT_THROW(RunExperiment(config), std::invalid_argument);
}

TEST(Experiment, LaunchCountersAddUp) {
  const auto result = RunExperiment(SmallExperiment(ManagerKind::kCustody));
  int input_tasks = 0;
  // 8 jobs, input task counts vary per file; recompute from locality stats:
  input_tasks = result.launches_local + result.launches_covered_busy +
                result.launches_uncovered;
  EXPECT_GT(input_tasks, 0);
  const double locality =
      100.0 * result.launches_local / static_cast<double>(input_tasks);
  EXPECT_NEAR(locality, result.overall_task_locality_percent, 1e-6);
}

}  // namespace
}  // namespace custody::workload
